package lint

// puretaint makes the determinism contract of PR 2 a compile-time
// property. The staged campaign promises that generation, reduction and
// profile keying are pure functions of the seed: bit-identical at any
// worker count, on any Go release, on any day. The runtime guards (golden
// campaign hash, worker-count matrices) catch a violation only after it
// executes; puretaint catches it where it is written, by walking the call
// graph from every //hpmlint:pure declaration and rejecting any reachable
// operation whose result can vary run to run:
//
//   - wall-clock reads (time.Now and friends) and the unspecified
//     math/rand / crypto/rand streams — the classic clock-and-dice taint;
//   - ranging over a map, whose iteration order is deliberately random;
//   - writes to package-level variables — shared state that makes the
//     result depend on call interleaving;
//   - starting goroutines, whose scheduling order is unspecified;
//   - calls through function values or interface methods, which the
//     checker cannot follow — purity must be provable, so an opaque
//     callee is a finding, not a shrug.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// taintedExterns are the out-of-module calls that inject nondeterminism.
// time is matched per function (wallClockFuncs, shared with the
// nondeterminism analyzer); the rand packages and the environment are
// tainted wholesale.
func taintedExtern(e externCall) (string, bool) {
	switch e.path {
	case "time":
		if wallClockFuncs[e.name] {
			return "reads the wall clock via time." + e.name, true
		}
	case "math/rand", "math/rand/v2":
		return "draws from " + e.path + ", whose stream is unspecified across Go releases", true
	case "crypto/rand":
		return "draws from crypto/rand, which is nondeterministic by design", true
	case "os":
		switch e.name {
		case "Getenv", "LookupEnv", "Environ", "Getpid", "Hostname":
			return "reads ambient process state via os." + e.name, true
		}
	}
	return "", false
}

// PureTaintAnalyzer returns the puretaint interprocedural analyzer.
func PureTaintAnalyzer() *Analyzer {
	return &Analyzer{
		Name:       "puretaint",
		Doc:        "//hpmlint:pure functions must not transitively reach clocks, unseeded randomness, map-range ordering, or shared writes",
		RunProgram: runPureTaint,
	}
}

func runPureTaint(prog *Program) []Diagnostic {
	g := prog.CallGraph()
	var roots []*funcNode
	for _, n := range g.nodes {
		if n.pure {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, r := range sortedReaches(g.reachable(roots)) {
		n := r.node
		report := func(pos token.Pos, what string) {
			msg := fmt.Sprintf("%s %s", n.name(), what)
			if r.from != nil {
				msg = fmt.Sprintf("%s; reachable from //hpmlint:pure %s (via %s)", msg, r.root.name(), r.via())
			} else {
				msg += "; declared //hpmlint:pure"
			}
			diags = append(diags, Diagnostic{
				Pos:     n.pkg.Fset.Position(pos),
				Rule:    "puretaint",
				Message: msg,
			})
		}

		for _, e := range n.externs {
			if what, bad := taintedExtern(e); bad {
				report(e.pos, what)
			}
		}
		for _, pos := range n.dynamics {
			report(pos, "calls through a function value or interface method, which cannot be proven deterministic")
		}
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.RangeStmt:
				if t := n.pkg.Info.Types[s.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						report(s.For, "ranges over a map; iteration order is nondeterministic")
					}
				}
			case *ast.GoStmt:
				report(s.Go, "starts a goroutine; scheduling order is nondeterministic")
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if v := packageLevelTarget(n.pkg, lhs); v != nil {
						report(lhs.Pos(), fmt.Sprintf("writes package-level variable %s; shared state makes results depend on call interleaving", v.Name()))
					}
				}
			case *ast.IncDecStmt:
				if v := packageLevelTarget(n.pkg, s.X); v != nil {
					report(s.X.Pos(), fmt.Sprintf("writes package-level variable %s; shared state makes results depend on call interleaving", v.Name()))
				}
			}
			return true
		})
	}
	return dedupDiags(diags)
}

// packageLevelTarget resolves an assignment target to the package-level
// variable at its base, if any: g, g.field, g[k], *g's pointee is not
// tracked (aliasing), but the common spellings are.
func packageLevelTarget(p *Package, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return nil
			}
			v, ok := p.Info.Uses[id].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return nil
			}
			return v
		}
	}
}

// dedupDiags removes exact duplicates (same position, rule and message) —
// a site reachable from several roots is reported once, for its first
// root in source order.
func dedupDiags(diags []Diagnostic) []Diagnostic {
	type key struct {
		file      string
		line, col int
		rule      string
	}
	seen := make(map[key]bool)
	out := diags[:0]
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	return out
}
