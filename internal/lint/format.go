package lint

// Machine-readable output. Two formats beyond the classic file:line:col
// text: a versioned JSON envelope (the stable interchange format — the
// baseline file embeds the same Finding schema), and a minimal SARIF 2.1.0
// log for code-scanning UIs. Both are rendered from Findings, so paths are
// module-relative and deterministic.

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders findings one per line in file:line:col style.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the -format json envelope. Version moves with
// baselineVersion: the findings array is schema-identical to the baseline's.
type jsonReport struct {
	Version  int       `json:"version"`
	Findings []Finding `json:"findings"`
}

// WriteJSON renders the versioned JSON report.
func WriteJSON(w io.Writer, fs []Finding) error {
	sorted := append([]Finding(nil), fs...)
	sortFindings(sorted)
	if sorted == nil {
		sorted = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Version: baselineVersion, Findings: sorted})
}

// Minimal SARIF 2.1.0 structures — only what a viewer needs to place a
// result: tool metadata with rule descriptions, and one result per finding
// with a physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders a single-run SARIF 2.1.0 log. The rules table carries
// every analyzer in the suite (plus badignore), findings or not, so a
// viewer can show rule docs for a clean run too.
func WriteSARIF(w io.Writer, fs []Finding, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "badignore",
		ShortDescription: sarifText{Text: "suppression comments must name a rule and give a reason"},
	})

	sorted := append([]Finding(nil), fs...)
	sortFindings(sorted)
	results := make([]sarifResult, 0, len(sorted))
	for _, f := range sorted {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "hpmlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
