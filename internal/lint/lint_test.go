package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation comments used by the violation
// fixtures: one or more backquoted regexes after "// want".
var wantRe = regexp.MustCompile("// want ((?:`[^`]+`\\s*)+)")

var backquoted = regexp.MustCompile("`([^`]+)`")

type want struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans a fixture directory for // want comments.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range backquoted.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, q[1], err)
				}
				wants = append(wants, &want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments", dir)
	}
	return wants
}

// TestAnalyzerGolden checks each analyzer against its violation fixture:
// every // want comment must be matched by a diagnostic on that line, and
// no unexpected diagnostics may appear. The fixtures also contain clean
// code and suppressed violations, so a pass proves both directions.
func TestAnalyzerGolden(t *testing.T) {
	cases := []struct {
		fixture   string
		analyzers []*Analyzer
	}{
		{"nondeterminism", []*Analyzer{NondeterminismAnalyzer()}},
		{"counterwidth", []*Analyzer{CounterWidthAnalyzer()}},
		{"guarded", []*Analyzer{GuardedStateAnalyzer()}},
		{"floatcompare", []*Analyzer{FloatCompareAnalyzer()}},
		{"unitsmixing", []*Analyzer{UnitsMixingAnalyzer()}},
		// The worker-pool fixture is checked by two analyzers at once, the
		// way the production engine is: guarded for the pool's shared
		// counters, nondeterminism for wall-clock reads.
		{"enginepool", []*Analyzer{GuardedStateAnalyzer(), NondeterminismAnalyzer()}},
		// The profile-store fixture mirrors the memoized measurement
		// cache: a mutex-guarded map plus hit/miss counters, with the
		// lock-free "fast path" bugs the guarded analyzer must catch.
		{"profilestore", []*Analyzer{GuardedStateAnalyzer()}},
		// The faults fixture mirrors the fault-injection plan builder: a
		// package whose whole contract is seeded reproducibility, reaching
		// for the clocks and streams it must never touch.
		{"faults", []*Analyzer{NondeterminismAnalyzer()}},
		// The telemetry fixture mirrors the hpmtel metrics core: a
		// mutex-guarded registry with a lock-free fast path, plus the
		// per-observation clock and rand reads an observability layer
		// must not take.
		{"telemetry", []*Analyzer{GuardedStateAnalyzer(), NondeterminismAnalyzer()}},
		// The v2 interprocedural fixtures: each plants violations at the
		// end of call chains so a pass proves the reachability engine, not
		// just the per-site classifiers.
		{"puretaint", []*Analyzer{PureTaintAnalyzer()}},
		{"hotalloc", []*Analyzer{HotAllocAnalyzer()}},
		{"lockorder", []*Analyzer{LockOrderAnalyzer()}},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.fixture)
			pkgs, err := Load(".", dir)
			if err != nil {
				t.Fatal(err)
			}
			diags := RunAnalyzers(pkgs, tc.analyzers)
			wants := parseWants(t, dir)
			for _, d := range diags {
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == filepath.Base(d.Pos.Filename) &&
						w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestBadIgnoreReported checks that a suppression without a reason is
// itself reported and suppresses nothing.
func TestBadIgnoreReported(t *testing.T) {
	pkgs, err := Load(".", filepath.Join("testdata", "src", "badignore"))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkgs, Analyzers())
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	got := strings.Join(rules, ",")
	if got != "badignore,floatcompare" {
		t.Fatalf("want [badignore floatcompare], got %v", diags)
	}
}

// TestFixtureTreeIsDirty checks the acceptance criterion that hpmlint
// exits non-zero on the violation fixtures: running the full suite over
// the testdata tree must report findings for every analyzer.
func TestFixtureTreeIsDirty(t *testing.T) {
	diags, err := Run(".", "testdata/src/...")
	if err != nil {
		t.Fatal(err)
	}
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
	}
	for _, a := range Analyzers() {
		if byRule[a.Name] == 0 {
			t.Errorf("no %s findings in the fixture tree", a.Name)
		}
	}
	if byRule["badignore"] == 0 {
		t.Errorf("no badignore findings in the fixture tree")
	}
}

// TestFixtureCounts pins the exact per-fixture, per-rule finding counts
// committed in testdata/fixture_counts.json — the same golden file the
// `make lint-fixtures` CI gate feeds to `hpmlint -expect`. An analyzer
// that stops building never gets here (the test suite fails to compile);
// an analyzer that is silently neutered shows up as a count of zero
// against a non-zero expectation.
func TestFixtureCounts(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "fixture_counts.json"))
	if err != nil {
		t.Fatal(err)
	}
	var want map[string]map[string]int
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("fixture_counts.json: %v", err)
	}
	diags, err := Run(".", "testdata/src/...")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]map[string]int)
	for _, d := range diags {
		fixture := filepath.Base(filepath.Dir(d.Pos.Filename))
		if got[fixture] == nil {
			got[fixture] = make(map[string]int)
		}
		got[fixture][d.Rule]++
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("fixture counts diverge from testdata/fixture_counts.json\nwant: %v\ngot:  %v", want, got)
	}
	// Every fixture directory must appear in the golden file: a fixture
	// producing nothing at all is a neutered fixture, not a clean one.
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			if _, ok := want[e.Name()]; !ok {
				t.Errorf("fixture %s has no entry in fixture_counts.json", e.Name())
			}
		}
	}
}

// TestRepoIsClean is the zero-findings gate: the full suite over the real
// tree must report nothing unsuppressed. This is the test-suite twin of
// the `hpmlint ./...` CI step.
func TestRepoIsClean(t *testing.T) {
	root, _, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}
}

// TestEnginePackagesClean pins the staged engine's concurrency contract
// from the linter's side: the workload engine (worker pool included) and
// the parallel profile measurement must be clean under exactly the two
// analyzers that police parallel simulator code — guarded, so every
// shared pool counter carries an honoured "guarded by mu" annotation,
// and nondeterminism, so no engine path can read the wall clock or the
// global math/rand stream. TestRepoIsClean subsumes this, but this test
// keeps failing loudly even if someone adds a suppression there.
func TestEnginePackagesClean(t *testing.T) {
	root, _, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/workload", "./internal/profile")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkgs, []*Analyzer{GuardedStateAnalyzer(), NondeterminismAnalyzer()})
	for _, d := range diags {
		t.Errorf("engine finding: %s", d)
	}
}

// TestTelemetryPackageClean pins hpmtel's observation contract from the
// linter's side: the metrics core shares atomic state across every engine
// worker (guarded), and its only clock read is span.go's suppressed
// monotonic origin (nondeterminism) — any new wall-clock or math/rand
// reach must either go through that bottleneck or fail here. As with the
// engine gate, TestRepoIsClean subsumes this, but this keeps failing
// loudly even if a suppression is added there.
func TestTelemetryPackageClean(t *testing.T) {
	root, _, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkgs, []*Analyzer{GuardedStateAnalyzer(), NondeterminismAnalyzer()})
	for _, d := range diags {
		t.Errorf("telemetry finding: %s", d)
	}
}

// TestSuppressionPlacement pins the two sanctioned placements: same line
// and the line directly above. Two lines above must NOT suppress.
func TestSuppressionPlacement(t *testing.T) {
	d := Diagnostic{Rule: "floatcompare"}
	d.Pos.Filename = "f.go"
	d.Pos.Line = 10
	mk := func(line int, rule string) suppression {
		return suppression{file: "f.go", line: line, rules: map[string]bool{rule: true}}
	}
	cases := []struct {
		sup  suppression
		want bool
	}{
		{mk(10, "floatcompare"), true},
		{mk(9, "floatcompare"), true},
		{mk(8, "floatcompare"), false},
		{mk(11, "floatcompare"), false},
		{mk(10, "guarded"), false},
		{mk(10, "all"), true},
	}
	for i, tc := range cases {
		if got := suppressed(d, []suppression{tc.sup}); got != tc.want {
			t.Errorf("case %d: suppressed = %v, want %v", i, got, tc.want)
		}
	}
}

// TestLoadErrors pins loader failure modes.
func TestLoadErrors(t *testing.T) {
	if _, err := Load(".", "no/such/dir"); err == nil {
		t.Error("Load of a missing directory should fail")
	}
	if _, err := Load(".", "../../../outside"); err == nil {
		t.Error("Load escaping the module root should fail")
	}
}

// TestDiagnosticString pins the report format tools and editors parse.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "guarded", Message: "m"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "a/b.go:3:7: guarded: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := fmt.Sprint(d); got != d.String() {
		t.Errorf("Sprint mismatch: %q", got)
	}
}
