// Package lint implements hpmlint, a domain-aware static-analysis suite
// for this repository. The paper's results are counter-rate ratios
// collected over a nine-month campaign, so the reproduction lives or dies
// on two invariants the Go compiler cannot check: simulations must be
// deterministic (seeded RNG and simulated clock, never wall time) and
// counter arithmetic must be overflow-aware (the RS2HPM registers are
// 32-bit and wrap). hpmlint turns those invariants, plus the repo's
// locking and unit-discipline conventions, into machine-checked rules.
//
// The suite is stdlib-only (go/ast, go/parser, go/types) and offline-safe:
// module packages are type-checked from source with a chained importer, so
// no golang.org/x/tools dependency is needed.
//
// Findings can be suppressed with a comment on the offending line or on
// the line directly above it:
//
//	//hpmlint:ignore <rule> <reason>
//
// The reason is mandatory; a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the familiar file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one hpmlint rule. Exactly one of Run and RunProgram is set:
// Run is a per-package AST walk; RunProgram sees the whole program (matched
// packages plus dependency closure) and is how the interprocedural
// analyzers follow call chains across package boundaries.
type Analyzer struct {
	// Name is the rule identifier used in reports and suppressions.
	Name string
	// Doc is a one-line description for -help output.
	Doc string
	// Run inspects one package and returns its findings.
	Run func(p *Package) []Diagnostic
	// RunProgram inspects the whole program and returns its findings.
	RunProgram func(prog *Program) []Diagnostic
}

// Analyzers returns the full hpmlint suite in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer(),
		CounterWidthAnalyzer(),
		GuardedStateAnalyzer(),
		FloatCompareAnalyzer(),
		UnitsMixingAnalyzer(),
		PureTaintAnalyzer(),
		LockOrderAnalyzer(),
		HotAllocAnalyzer(),
	}
}

// ignoreRe matches the suppression syntax. Rule may be a comma-separated
// list; everything after it is the mandatory reason.
var ignoreRe = regexp.MustCompile(`^//hpmlint:ignore\s+([A-Za-z0-9_,-]+)(?:\s+(.*))?$`)

// suppression is one parsed //hpmlint:ignore comment.
type suppression struct {
	file  string
	line  int // line the comment sits on
	rules map[string]bool
}

// collectSuppressions parses every //hpmlint:ignore comment in the
// package. Malformed suppressions (no rule, or no reason) are reported as
// badignore diagnostics so they cannot silently mask real findings.
func collectSuppressions(p *Package) (sups []suppression, diags []Diagnostic) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//hpmlint:ignore") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    "badignore",
						Message: "malformed suppression: want //hpmlint:ignore <rule> <reason>",
					})
					continue
				}
				rules := make(map[string]bool)
				for _, r := range strings.Split(m[1], ",") {
					rules[r] = true
				}
				sups = append(sups, suppression{file: pos.Filename, line: pos.Line, rules: rules})
			}
		}
	}
	return sups, diags
}

// suppressed reports whether d is covered by a suppression on its own line
// or on the line directly above it.
func suppressed(d Diagnostic, sups []suppression) bool {
	for _, s := range sups {
		if s.file != d.Pos.Filename {
			continue
		}
		if (s.line == d.Pos.Line || s.line == d.Pos.Line-1) && (s.rules[d.Rule] || s.rules["all"]) {
			return true
		}
	}
	return false
}

// RunAnalyzers applies the given analyzers to each package, filters
// suppressed findings, and returns the rest sorted by position. The
// packages are treated as a self-contained program (no external dependency
// closure); use RunProgramAnalyzers with LoadProgram when interprocedural
// analyzers must follow calls into packages the patterns did not match.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgramAnalyzers(NewProgram(pkgs), analyzers)
}

// RunProgramAnalyzers applies the given analyzers to the program, filters
// suppressed findings, and returns the rest sorted by position.
//
// Per-package analyzers run on (and suppressions for badignore are
// reported from) the matched packages only. Interprocedural analyzers run
// once over the whole program, and their findings are kept wherever they
// land — a zero-alloc contract broken inside a dependency is still broken.
// Suppressions are honoured program-wide for the same reason.
func RunProgramAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	allSups := make(map[*Package][]suppression, len(prog.All))
	var sups []suppression
	for _, p := range prog.All {
		ps, bad := collectSuppressions(p)
		allSups[p] = ps
		sups = append(sups, ps...)
		if prog.Matched(p) {
			out = append(out, bad...)
		}
	}
	for _, p := range prog.Pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			for _, d := range a.Run(p) {
				if !suppressed(d, allSups[p]) {
					out = append(out, d)
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		for _, d := range a.RunProgram(prog) {
			if !suppressed(d, sups) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// Run loads the packages matched by patterns (relative to dir) and applies
// the full suite. It is the library form of the hpmlint command.
func Run(dir string, patterns ...string) ([]Diagnostic, error) {
	prog, err := LoadProgram(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunProgramAnalyzers(prog, Analyzers()), nil
}
