package lint

// Baselines make the lint gate a ratchet. The repository commits
// .hpmlint-baseline.json — the accepted set of findings, currently empty —
// and `hpmlint -baseline` fails only on findings *not* in that set, while
// reporting baseline entries that no longer fire so the file can shrink.
// Two properties matter for a gate that runs in CI:
//
//   - stability: findings are keyed by (rule, file, message), not line
//     numbers, so an unrelated edit shifting code does not invalidate the
//     baseline;
//   - multiset semantics: three identical findings against a baseline of
//     two is one new finding, not zero.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// baselineVersion is bumped when the Finding schema or the matching rule
// changes incompatibly.
const baselineVersion = 1

// Finding is one diagnostic in portable, baseline-stable form. File is
// slash-separated and relative to the module root.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// key is the baseline identity of a finding: everything except position,
// which drifts with unrelated edits.
func (f Finding) key() string {
	return f.Rule + "\x00" + f.File + "\x00" + f.Message
}

// String renders the finding in file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// Baseline is the decoded contents of a baseline file.
type Baseline struct {
	Version  int       `json:"version"`
	Findings []Finding `json:"findings"`
}

// NewFinding converts a diagnostic to portable form, relativizing its file
// path against the module root.
func NewFinding(d Diagnostic, root string) Finding {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return Finding{Rule: d.Rule, File: file, Line: d.Pos.Line, Col: d.Pos.Column, Message: d.Message}
}

// Findings converts a diagnostic slice wholesale.
func Findings(diags []Diagnostic, root string) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, NewFinding(d, root))
	}
	return out
}

// sortFindings orders findings deterministically: file, line, col, rule,
// message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// EncodeBaseline renders a canonical baseline file: sorted findings,
// indented JSON, trailing newline. Encoding the decode of an encode is
// byte-identical, which the fuzz harness checks.
func EncodeBaseline(fs []Finding) ([]byte, error) {
	sorted := append([]Finding(nil), fs...)
	sortFindings(sorted)
	if sorted == nil {
		sorted = []Finding{}
	}
	b := Baseline{Version: baselineVersion, Findings: sorted}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeBaseline parses a baseline file, rejecting unknown versions and
// malformed entries.
func DecodeBaseline(data []byte) (*Baseline, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var b Baseline
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline: unsupported version %d (want %d)", b.Version, baselineVersion)
	}
	for i, f := range b.Findings {
		if f.Rule == "" || f.File == "" {
			return nil, fmt.Errorf("baseline: finding %d missing rule or file", i)
		}
		if strings.ContainsRune(f.File, '\\') || filepath.IsAbs(f.File) {
			return nil, fmt.Errorf("baseline: finding %d: file must be a slash-separated relative path", i)
		}
	}
	return &b, nil
}

// DiffBaseline compares current findings against the baseline with multiset
// semantics. new are findings not covered by the baseline (these fail the
// gate); stale are baseline entries that no longer fire (these are reported
// so the baseline can be re-written smaller).
func DiffBaseline(current []Finding, base *Baseline) (newFindings, stale []Finding) {
	counts := make(map[string]int, len(base.Findings))
	byKey := make(map[string]Finding, len(base.Findings))
	for _, f := range base.Findings {
		counts[f.key()]++
		byKey[f.key()] = f
	}
	cur := append([]Finding(nil), current...)
	sortFindings(cur)
	for _, f := range cur {
		if counts[f.key()] > 0 {
			counts[f.key()]--
			continue
		}
		newFindings = append(newFindings, f)
	}
	var staleKeys []string
	for k, c := range counts {
		for i := 0; i < c; i++ {
			staleKeys = append(staleKeys, k)
		}
	}
	sort.Strings(staleKeys)
	for _, k := range staleKeys {
		stale = append(stale, byKey[k])
	}
	return newFindings, stale
}

// ModuleRoot exposes the go.mod discovery used by the loader, so the
// command can relativize findings the same way Load resolved them.
func ModuleRoot(dir string) (string, error) {
	root, _, err := moduleRoot(dir)
	return root, err
}
