package lint

// lockorder extends the guarded analyzer from "is the lock held here" to
// "can these locks deadlock". It builds a lock-acquisition graph over the
// whole program: every sync.Mutex/RWMutex struct field or package-level
// variable is a lock class, and an edge A -> B means some function
// acquires B while holding A — directly, or through a statically-resolved
// call chain (a per-function may-acquire summary computed to fixpoint over
// the call graph). A cycle in that graph is a potential deadlock: two
// goroutines entering it from different edges can block forever, which in
// this repo means a collector daemon that stops serving snapshots
// mid-campaign. Lock classes are types.Objects, so two instances of the
// same struct share a class — the standard conservative choice.
//
// It also reports the guarded-state escape the per-package analyzer cannot
// see as such: a goroutine launched *inside* a critical section whose
// closure touches a field guarded by one of the locks currently held. The
// lock does not travel with the goroutine, so the access races with
// whatever the next holder does.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer returns the lockorder interprocedural analyzer.
func LockOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name:       "lockorder",
		Doc:        "the program-wide lock-acquisition graph must be acyclic, and guarded state must not escape its critical section via goroutine",
		RunProgram: runLockOrder,
	}
}

// lockEvent records acquiring `to` while holding `from`.
type lockEvent struct {
	from, to types.Object
	pos      token.Pos
	pkg      *Package
	note     string // "" for a direct Lock, otherwise the call it happens through
}

type lockInfo struct {
	names   map[types.Object]string               // lock class -> display name
	guardOf map[types.Object]types.Object         // guarded field -> its mutex field
	acquire map[*types.Func]map[types.Object]bool // direct acquisitions per function
}

func runLockOrder(prog *Program) []Diagnostic {
	g := prog.CallGraph()
	info := collectLockInfo(prog)

	// Pass 1 per function: direct acquisitions, direct held->acquire
	// events, calls made while holding, and goroutine escapes.
	var events []lockEvent
	var diags []Diagnostic
	type heldCall struct {
		held   []types.Object
		callee *types.Func
		pos    token.Pos
		pkg    *Package
		name   string
	}
	var heldCalls []heldCall

	for _, n := range sortedNodes(g) {
		w := &lockWalker{p: n.pkg, info: info}
		w.onAcquire = func(lock types.Object, held []types.Object, pos token.Pos) {
			acq := info.acquire[n.obj]
			if acq == nil {
				acq = make(map[types.Object]bool)
				info.acquire[n.obj] = acq
			}
			acq[lock] = true
			for _, h := range held {
				events = append(events, lockEvent{from: h, to: lock, pos: pos, pkg: n.pkg})
			}
		}
		w.onCall = func(callee *types.Func, held []types.Object, pos token.Pos) {
			if len(held) > 0 && g.nodes[callee] != nil {
				heldCalls = append(heldCalls, heldCall{held: held, callee: callee, pos: pos, pkg: n.pkg, name: g.nodes[callee].name()})
			}
		}
		w.onEscape = func(field types.Object, guard types.Object, pos token.Pos) {
			diags = append(diags, Diagnostic{
				Pos:  n.pkg.Fset.Position(pos),
				Rule: "lockorder",
				Message: fmt.Sprintf("%s (guarded by %s) is accessed in a goroutine launched while %s is held in %s; the lock does not travel with the goroutine",
					field.Name(), info.name(guard), info.name(guard), n.name()),
			})
		}
		w.walk(n.decl.Body)
	}

	// Pass 2: close the per-function may-acquire sets over static calls.
	mayAcquire := make(map[*types.Func]map[types.Object]bool, len(g.nodes))
	for obj, acq := range info.acquire {
		set := make(map[types.Object]bool, len(acq))
		for l := range acq {
			set[l] = true
		}
		mayAcquire[obj] = set
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			for _, e := range n.calls {
				for l := range mayAcquire[e.callee] {
					set := mayAcquire[n.obj]
					if set == nil {
						set = make(map[types.Object]bool)
						mayAcquire[n.obj] = set
					}
					if !set[l] {
						set[l] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: expand calls-while-held into events through the summaries.
	for _, hc := range heldCalls {
		locks := sortedLocks(mayAcquire[hc.callee], info)
		for _, l := range locks {
			for _, h := range hc.held {
				events = append(events, lockEvent{
					from: h, to: l, pos: hc.pos, pkg: hc.pkg,
					note: fmt.Sprintf("via call to %s", hc.name),
				})
			}
		}
	}

	// Self-deadlock: acquiring a class already held.
	for _, e := range events {
		if e.from == e.to {
			what := "acquires"
			if e.note != "" {
				what = "may acquire (" + e.note + ")"
			}
			diags = append(diags, Diagnostic{
				Pos:  e.pkg.Fset.Position(e.pos),
				Rule: "lockorder",
				Message: fmt.Sprintf("%s %s while already holding it (self-deadlock for a non-reentrant mutex)",
					what, info.name(e.from)),
			})
		}
	}

	// Pass 4: cycle detection over the distinct ordered pairs.
	adj := make(map[types.Object]map[types.Object]bool)
	for _, e := range events {
		if e.from == e.to {
			continue
		}
		if adj[e.from] == nil {
			adj[e.from] = make(map[types.Object]bool)
		}
		adj[e.from][e.to] = true
	}
	scc := stronglyConnected(adj, info)
	for _, e := range events {
		if e.from == e.to {
			continue
		}
		cf, okF := scc[e.from]
		ct, okT := scc[e.to]
		if !okF || !okT || cf != ct {
			continue
		}
		what := "acquiring"
		if e.note != "" {
			what = "possibly acquiring (" + e.note + ")"
		}
		diags = append(diags, Diagnostic{
			Pos:  e.pkg.Fset.Position(e.pos),
			Rule: "lockorder",
			Message: fmt.Sprintf("%s %s while holding %s completes a lock-order cycle {%s}; concurrent holders can deadlock",
				what, info.name(e.to), info.name(e.from), cf),
		})
	}
	return dedupDiags(diags)
}

func (li *lockInfo) name(o types.Object) string {
	if n, ok := li.names[o]; ok {
		return n
	}
	if o.Pkg() != nil {
		return o.Pkg().Name() + "." + o.Name()
	}
	return o.Name()
}

// collectLockInfo indexes every lock class and guarded-field annotation in
// the program.
func collectLockInfo(prog *Program) *lockInfo {
	li := &lockInfo{
		names:   make(map[types.Object]string),
		guardOf: make(map[types.Object]types.Object),
		acquire: make(map[*types.Func]map[types.Object]bool),
	}
	for _, p := range prog.All {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch ts := n.(type) {
				case *ast.TypeSpec:
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						return true
					}
					mutexByName := make(map[string]types.Object)
					for _, fld := range st.Fields.List {
						for _, name := range fld.Names {
							obj := p.Info.Defs[name]
							if obj != nil && isMutexType(obj.Type()) {
								mutexByName[name.Name] = obj
								li.names[obj] = p.Name + "." + ts.Name.Name + "." + name.Name
							}
						}
					}
					for _, fld := range st.Fields.List {
						m := guardedByRe.FindStringSubmatch(fieldComment(fld))
						if m == nil {
							continue
						}
						guard, ok := mutexByName[m[1]]
						if !ok {
							continue // the guarded analyzer reports the bad annotation
						}
						for _, name := range fld.Names {
							if obj := p.Info.Defs[name]; obj != nil {
								li.guardOf[obj] = guard
							}
						}
					}
				case *ast.ValueSpec:
					for _, name := range ts.Names {
						obj := p.Info.Defs[name]
						if obj != nil && isMutexType(obj.Type()) &&
							obj.Parent() == p.Types.Scope() {
							li.names[obj] = p.Name + "." + name.Name
						}
					}
				}
				return true
			})
		}
	}
	return li
}

// lockWalker traverses one function body in source order, maintaining the
// set of held lock classes. Function literals are separate scopes (they
// may run on another goroutine) and are not entered, except to check
// goroutine escapes.
type lockWalker struct {
	p    *Package
	info *lockInfo
	held []types.Object // acquisition order

	onAcquire func(lock types.Object, held []types.Object, pos token.Pos)
	onCall    func(callee *types.Func, held []types.Object, pos token.Pos)
	onEscape  func(field, guard types.Object, pos token.Pos)
}

func (w *lockWalker) heldSnapshot() []types.Object {
	return append([]types.Object(nil), w.held...)
}

func (w *lockWalker) holds(o types.Object) bool {
	for _, h := range w.held {
		if h == o {
			return true
		}
	}
	return false
}

func (w *lockWalker) release(o types.Object) {
	for i, h := range w.held {
		if h == o {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

func (w *lockWalker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false // separate scope
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to the end of the
			// function, which the linear walk models by simply not
			// releasing; other deferred work is out of scope.
			return false
		case *ast.GoStmt:
			w.checkEscape(e)
			return false
		case *ast.CallExpr:
			if lock, op, ok := w.mutexOp(e); ok {
				switch op {
				case "Lock", "RLock":
					w.onAcquire(lock, w.heldSnapshot(), e.Lparen)
					if !w.holds(lock) {
						w.held = append(w.held, lock)
					}
				default: // Unlock, RUnlock
					w.release(lock)
				}
				return true
			}
			if callee, dynamic := staticCallee(w.p, e); !dynamic && callee != nil {
				w.onCall(callee, w.heldSnapshot(), e.Lparen)
			}
			return true
		}
		return true
	})
}

// mutexOp resolves mu.Lock()/Unlock()-shaped calls to the lock class they
// operate on.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	switch recv := unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := w.p.Info.Selections[recv]; ok && s.Kind() == types.FieldVal && isMutexType(s.Obj().Type()) {
			return s.Obj(), op, true
		}
	case *ast.Ident:
		if v, ok := w.p.Info.Uses[recv].(*types.Var); ok && isMutexType(v.Type()) {
			return v, op, true
		}
	}
	return nil, "", false
}

// checkEscape inspects a go statement launched while locks are held: any
// access in its closure to a field guarded by a held lock is reported.
func (w *lockWalker) checkEscape(g *ast.GoStmt) {
	if len(w.held) == 0 {
		return
	}
	fl, ok := unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := w.p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		guard, ok := w.info.guardOf[s.Obj()]
		if !ok || !w.holds(guard) {
			return true
		}
		w.onEscape(s.Obj(), guard, sel.Pos())
		return true
	})
}

// sortedNodes returns the graph's nodes in declaration order.
func sortedNodes(g *callGraph) []*funcNode {
	out := make([]*funcNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].decl.Pos() < out[j].decl.Pos() })
	return out
}

// sortedLocks orders a lock set by display name for deterministic output.
func sortedLocks(set map[types.Object]bool, info *lockInfo) []types.Object {
	out := make([]types.Object, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return info.name(out[i]) < info.name(out[j]) })
	return out
}

// stronglyConnected labels every lock that sits in a cycle with a
// deterministic name for its component ({A, B}); locks outside any cycle
// are absent from the result.
func stronglyConnected(adj map[types.Object]map[types.Object]bool, info *lockInfo) map[types.Object]string {
	// Iterative Tarjan over name-sorted nodes and edges.
	var nodes []types.Object
	seen := make(map[types.Object]bool)
	addNode := func(o types.Object) {
		if !seen[o] {
			seen[o] = true
			nodes = append(nodes, o)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for to := range tos {
			addNode(to)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return info.name(nodes[i]) < info.name(nodes[j]) })

	index := make(map[types.Object]int)
	low := make(map[types.Object]int)
	onStack := make(map[types.Object]bool)
	var stack []types.Object
	next := 0
	comp := make(map[types.Object]string)

	var strong func(v types.Object)
	strong = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, t := range sortedLocks(adj[v], info) {
			if _, ok := index[t]; !ok {
				strong(t)
				if low[t] < low[v] {
					low[v] = low[t]
				}
			} else if onStack[t] && index[t] < low[v] {
				low[v] = index[t]
			}
		}
		if low[v] == index[v] {
			var members []types.Object
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				members = append(members, top)
				if top == v {
					break
				}
			}
			cyclic := len(members) > 1 || adj[v][v]
			if cyclic {
				var names []string
				for _, m := range members {
					names = append(names, info.name(m))
				}
				sort.Strings(names)
				label := strings.Join(names, " <-> ")
				for _, m := range members {
					comp[m] = label
				}
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return comp
}
