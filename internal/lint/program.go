package lint

// Whole-program analysis support. The original five analyzers are
// per-package AST walks; the v2 analyzers (puretaint, lockorder, hotalloc)
// prove properties of *call chains* — a generator is only deterministic if
// everything it transitively calls is — so they need every module-local
// package the matched packages depend on, loaded and type-checked, in one
// place. Program is that place: the matched packages plus their dependency
// closure, sharing one FileSet, with the call graph built lazily and cached
// so the three interprocedural analyzers pay for it once.

import (
	"go/ast"
	"sort"
	"strings"
)

// Program is a set of matched packages plus the module-local dependency
// closure they were type-checked against.
type Program struct {
	// Pkgs are the packages matched by the load patterns — the ones
	// analyzers report findings for.
	Pkgs []*Package
	// All is Pkgs plus every module-local package imported (transitively)
	// by them, in deterministic import-path order. Interprocedural
	// analyzers traverse All so a hot path annotated in one package is
	// followed into the packages it calls.
	All []*Package

	matched map[*Package]bool
	cg      *callGraph
}

// NewProgram wraps already-loaded packages as a self-contained program
// (All == Pkgs). Used by tests and the per-package compatibility path.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{Pkgs: pkgs, All: pkgs}
	prog.index()
	return prog
}

func (prog *Program) index() {
	prog.matched = make(map[*Package]bool, len(prog.Pkgs))
	for _, p := range prog.Pkgs {
		prog.matched[p] = true
	}
}

// Matched reports whether p was named by the load patterns (as opposed to
// being pulled in as a dependency).
func (prog *Program) Matched(p *Package) bool { return prog.matched[p] }

// LoadProgram is Load plus the dependency closure: the returned Program's
// Pkgs are exactly what Load would return, and All additionally carries
// every module-local package the loader type-checked on the way.
func LoadProgram(dir string, patterns ...string) (*Program, error) {
	pkgs, l, err := load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	prog := &Program{Pkgs: pkgs}
	var paths []string
	for path := range l.cache {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		prog.All = append(prog.All, l.cache[path])
	}
	prog.index()
	return prog, nil
}

// Function annotations. A directive comment in the doc group of a function
// declaration opts it into an interprocedural contract:
//
//	//hpmlint:pure     — the function and everything it transitively calls
//	                     must be free of nondeterminism (puretaint)
//	//hpmlint:hotpath  — the function and everything it transitively calls
//	                     must be free of heap allocation (hotalloc)
//
// Anything after the directive word is a free-form note.
const (
	pureDirective    = "//hpmlint:pure"
	hotpathDirective = "//hpmlint:hotpath"
)

// hasDirective reports whether the declaration's doc comment group carries
// the given hpmlint directive. Directives are matched on the raw comment
// list because go/ast strips them from CommentGroup.Text.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}
