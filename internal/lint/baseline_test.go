package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rng"
)

// randomFinding draws one finding from seeded substreams, covering empty
// and unicode-ish message content.
func randomFinding(r *rng.Source) Finding {
	rules := []string{"puretaint", "lockorder", "hotalloc", "guarded", "nondeterminism"}
	files := []string{
		"internal/power2/power2.go",
		"internal/vm/vm.go",
		"internal/telemetry/telemetry.go",
		"cmd/hpmlint/main.go",
	}
	msgs := []string{
		"make allocates",
		"reads the wall clock via time.Now",
		"completes a lock-order cycle {a <-> b}",
		"ranges over a map; iteration order is nondeterministic",
		"boxes into interface parameter (interface{})",
		"",
	}
	return Finding{
		Rule:    rules[r.Intn(len(rules))],
		File:    files[r.Intn(len(files))],
		Line:    r.Intn(5000),
		Col:     r.Intn(200),
		Message: msgs[r.Intn(len(msgs))] + fmt.Sprintf(" #%d", r.Intn(10)),
	}
}

// TestBaselineRoundTripProperty is the property test behind the gate: for
// seeded random finding sets, write -> read -> diff against the identical
// set is empty both ways, and encoding is canonical (encode(decode(x)) ==
// x for encoder output).
func TestBaselineRoundTripProperty(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		r := rng.Stream(0xba5e11e, seed)
		fs := make([]Finding, r.Intn(40))
		for i := range fs {
			fs[i] = randomFinding(r)
		}
		// Duplicates exercise the multiset semantics.
		if len(fs) > 2 {
			fs = append(fs, fs[0], fs[1], fs[1])
		}

		data, err := EncodeBaseline(fs)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		base, err := DecodeBaseline(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if len(base.Findings) != len(fs) {
			t.Fatalf("seed %d: round trip changed cardinality: %d != %d", seed, len(base.Findings), len(fs))
		}
		fresh, stale := DiffBaseline(fs, base)
		if len(fresh) != 0 || len(stale) != 0 {
			t.Errorf("seed %d: diff of identical sets not empty: %d new, %d stale", seed, len(fresh), len(stale))
		}

		again, err := EncodeBaseline(base.Findings)
		if err != nil {
			t.Fatalf("seed %d: re-encode: %v", seed, err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("seed %d: encoding is not canonical", seed)
		}

		// Dropping one finding from the baseline must surface exactly one
		// new finding; adding one must surface exactly one stale entry.
		if len(fs) > 0 {
			short := &Baseline{Version: base.Version, Findings: base.Findings[1:]}
			fresh, _ = DiffBaseline(fs, short)
			if len(fresh) != 1 {
				t.Errorf("seed %d: removing one baseline entry => %d new findings, want 1", seed, len(fresh))
			}
			extra := append([]Finding{{Rule: "x", File: "y.go", Message: "z"}}, base.Findings...)
			_, stale = DiffBaseline(fs, &Baseline{Version: base.Version, Findings: extra})
			if len(stale) != 1 {
				t.Errorf("seed %d: adding one baseline entry => %d stale, want 1", seed, len(stale))
			}
		}
	}
}

// TestDiffBaselineLineInsensitive pins the stability property: a finding
// that only moved lines still matches its baseline entry.
func TestDiffBaselineLineInsensitive(t *testing.T) {
	f := Finding{Rule: "hotalloc", File: "a.go", Line: 10, Col: 3, Message: "make allocates"}
	moved := f
	moved.Line, moved.Col = 99, 7
	data, err := EncodeBaseline([]Finding{f})
	if err != nil {
		t.Fatal(err)
	}
	base, err := DecodeBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := DiffBaseline([]Finding{moved}, base)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("moved finding should match baseline: %d new, %d stale", len(fresh), len(stale))
	}
}

// TestDecodeBaselineRejects pins the validation errors.
func TestDecodeBaselineRejects(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"empty", ""},
		{"not json", "hello"},
		{"wrong version", `{"version": 2, "findings": []}`},
		{"unknown field", `{"version": 1, "findings": [], "extra": true}`},
		{"missing rule", `{"version": 1, "findings": [{"file": "a.go", "line": 1, "col": 1, "message": "m"}]}`},
		{"absolute path", `{"version": 1, "findings": [{"rule": "r", "file": "/etc/x.go", "line": 1, "col": 1, "message": "m"}]}`},
		{"backslash path", `{"version": 1, "findings": [{"rule": "r", "file": "a\\b.go", "line": 1, "col": 1, "message": "m"}]}`},
	}
	for _, tc := range cases {
		if _, err := DecodeBaseline([]byte(tc.data)); err == nil {
			t.Errorf("%s: DecodeBaseline accepted %q", tc.name, tc.data)
		}
	}
}

// FuzzBaselineDecode throws arbitrary bytes at the decoder: it must never
// panic, and anything it accepts must survive a canonical re-encode/decode
// round trip with the same finding multiset.
func FuzzBaselineDecode(f *testing.F) {
	f.Add([]byte(`{"version": 1, "findings": []}`))
	f.Add([]byte(`{"version": 1, "findings": [{"rule": "hotalloc", "file": "a/b.go", "line": 3, "col": 7, "message": "make allocates"}]}`))
	f.Add([]byte(`{"version": 2, "findings": []}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte("{\"version\": 1, \"findings\": [{\"rule\": \"r\", \"file\": \"\\u00e9.go\", \"line\": -1, \"col\": 0, \"message\": \"\\n\"}]}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		base, err := DecodeBaseline(data)
		if err != nil {
			return
		}
		enc, err := EncodeBaseline(base.Findings)
		if err != nil {
			t.Fatalf("accepted baseline failed to encode: %v", err)
		}
		again, err := DecodeBaseline(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\n%s", err, enc)
		}
		if len(again.Findings) != len(base.Findings) {
			t.Fatalf("round trip changed cardinality: %d != %d", len(again.Findings), len(base.Findings))
		}
		fresh, stale := DiffBaseline(base.Findings, again)
		if len(fresh) != 0 || len(stale) != 0 {
			t.Fatalf("round trip changed the multiset: %d new, %d stale", len(fresh), len(stale))
		}
	})
}

// TestWriteJSONStable pins the -format json envelope: field names, order
// of findings, and the version are the CLI's public contract.
func TestWriteJSONStable(t *testing.T) {
	fs := []Finding{
		{Rule: "b", File: "z.go", Line: 2, Col: 1, Message: "second"},
		{Rule: "a", File: "a.go", Line: 1, Col: 1, Message: "first"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Version  int       `json:"version"`
		Findings []Finding `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid json: %v\n%s", err, buf.Bytes())
	}
	if rep.Version != 1 || len(rep.Findings) != 2 {
		t.Fatalf("unexpected envelope: %+v", rep)
	}
	if rep.Findings[0].File != "a.go" {
		t.Errorf("findings not sorted: %+v", rep.Findings)
	}
	for _, field := range []string{`"rule"`, `"file"`, `"line"`, `"col"`, `"message"`} {
		if !strings.Contains(buf.String(), field) {
			t.Errorf("json output missing field %s", field)
		}
	}
}

// TestWriteSARIF pins the SARIF skeleton a code-scanning consumer needs.
func TestWriteSARIF(t *testing.T) {
	fs := []Finding{{Rule: "hotalloc", File: "a.go", Line: 3, Col: 7, Message: "make allocates"}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fs, Analyzers()); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid sarif: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected sarif shape: %s", buf.String())
	}
	if log.Runs[0].Tool.Driver.Name != "hpmlint" {
		t.Errorf("driver name = %q", log.Runs[0].Tool.Driver.Name)
	}
	if n := len(log.Runs[0].Tool.Driver.Rules); n != len(Analyzers())+1 {
		t.Errorf("rules table has %d entries, want %d", n, len(Analyzers())+1)
	}
	if len(log.Runs[0].Results) != 1 || log.Runs[0].Results[0].RuleID != "hotalloc" {
		t.Errorf("results: %+v", log.Runs[0].Results)
	}
}
