// Package workload is a violation fixture for the staged engine's worker
// pool: it is named like the simulator package so both the guarded and
// nondeterminism analyzers apply, the way they do to the production
// engine. Shared pool state must carry machine-checked "guarded by mu"
// annotations honoured at every access, and engine code may never read
// the wall clock — a parallel engine must reproduce the serial result
// bit-for-bit, so host scheduling cannot be allowed to leak into the
// simulation.
package workload

import (
	"sync"
	"time"
)

// pool mirrors the production engine's worker pool: persistent workers
// drain a task channel, and the stats counters are shared between them.
type pool struct {
	tasks chan func()

	mu       sync.Mutex
	advanced uint64 // guarded by mu; job-advancement tasks executed
	sampled  uint64 // guarded by mu; node counter samples folded
}

// newPool starts workers that count their work under the lock: clean.
func newPool(workers int) *pool {
	p := &pool{tasks: make(chan func(), workers)}
	for w := 0; w < workers; w++ {
		go func() {
			for task := range p.tasks {
				task()
				p.mu.Lock()
				p.advanced++
				p.mu.Unlock()
			}
		}()
	}
	return p
}

// Stats reads both counters under the lock: clean.
func (p *pool) Stats() (advanced, sampled uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.advanced, p.sampled
}

// runSharded holds the lock at the send, but the closure it hands to the
// pool is a separate scope executed on a worker goroutine: the increment
// races with every other worker.
func (p *pool) runSharded(shards int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for s := 0; s < shards; s++ {
		p.tasks <- func() {
			p.sampled++ // want `p\.sampled is guarded by p\.mu`
		}
	}
}

// peekAdvanced skips the lock for a "quick look" at the counter.
func (p *pool) peekAdvanced() uint64 {
	return p.advanced // want `p\.advanced is guarded by p\.mu`
}

// timeShard measures a worker's latency on the wall clock: host
// scheduling leaking into a simulator package.
func (p *pool) timeShard() float64 {
	start := time.Now() // want `calls time\.Now`
	p.tasks <- func() {}
	return time.Since(start).Seconds() // want `calls time\.Since`
}
