// Package telemetry is a violation fixture mirroring the hpmtel metrics
// core: a mutex-guarded registry read lock-free on the "fast path", and
// the wall-clock and math/rand reads an observability layer is always
// tempted to take. The real internal/telemetry must confine its clock to
// one suppressed read; everything here shows what the analyzers catch
// when that discipline slips.
package telemetry

import (
	"math/rand" // want `imports math/rand`
	"sync"
	"time"
)

// registry mirrors the hpmtel Registry shape: named counters behind a
// mutex.
type registry struct {
	mu       sync.Mutex
	counters map[string]*uint64 // guarded by mu
}

// counter is the correct get-or-create path.
func (r *registry) counter(name string) *uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.counters == nil {
		r.counters = map[string]*uint64{}
	}
	c := new(uint64)
	r.counters[name] = c
	return c
}

// fastPath is the classic metrics-library bug: a lock-free map read racing
// the guarded writes.
func (r *registry) fastPath(name string) *uint64 {
	if c, ok := r.counters[name]; ok { // want `r\.counters is guarded by r\.mu`
		return c
	}
	return r.counter(name)
}

// snapshotRacy copies the map without the lock, from a reporting goroutine.
func (r *registry) snapshotRacy(out chan<- int) {
	go func() {
		out <- len(r.counters) // want `r\.counters is guarded by r\.mu`
	}()
}

// stamp reads the wall clock per observation — the perturbation hpmtel's
// disabled path exists to avoid.
func stamp() int64 {
	return time.Now().UnixNano() // want `calls time\.Now`
}

// elapsed compounds it with a second clock read.
func elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `calls time\.Since`
}

// sampleJitter draws from the global stream to decide whether to record.
func sampleJitter() bool {
	return rand.Float64() < 0.01
}

// origin shows the one sanctioned shape: a process-start origin read once,
// suppressed with its reason, as internal/telemetry's span.go does.
func origin() time.Time {
	//hpmlint:ignore nondeterminism single monotonic origin for stopwatch spans; never feeds the simulation
	return time.Now()
}
