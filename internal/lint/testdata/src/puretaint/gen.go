// Package genkit is the puretaint violation fixture. It mirrors the shape
// of the campaign generator: a handful of //hpmlint:pure roots (day
// generation, reduction, profile keying) above helpers that commit every
// class of nondeterminism the analyzer must catch — and a few clean or
// unreachable functions that prove it stays quiet where it should.
package genkit

import (
	"crypto/rand"
	mrand "math/rand"
	"os"
	"time"
)

// generation counts calls; writing it from pure code is shared state.
var generation int

// GenerateDay is an annotated root: everything reachable from here must be
// a pure function of (seed, day).
//
//hpmlint:pure
func GenerateDay(seed uint64, day int) uint64 {
	generation++ // want `writes package-level variable generation`
	h := mix(seed, uint64(day))
	h ^= stamp()
	return h
}

// mix is reachable and clean: pure arithmetic, no findings.
func mix(a, b uint64) uint64 {
	a ^= b * 0x9e3779b97f4a7c15
	a ^= a >> 33
	return a
}

// stamp is reachable from GenerateDay; its clock read taints the root.
func stamp() uint64 {
	return uint64(time.Now().UnixNano()) // want `reads the wall clock via time.Now`
}

// ReduceDay folds per-class counts; map iteration order leaks into the
// sum for float-valued reductions, so ranging a map is out.
//
//hpmlint:pure
func ReduceDay(counts map[string]uint64) uint64 {
	var total uint64
	for _, v := range counts { // want `ranges over a map`
		total += v
	}
	return total
}

// Keyed applies a caller-supplied transform; an opaque callee cannot be
// proven deterministic.
//
//hpmlint:pure
func Keyed(seed uint64, f func(uint64) uint64) uint64 {
	return f(seed) // want `calls through a function value or interface method`
}

// Fanout races its result through a goroutine.
//
//hpmlint:pure
func Fanout(seed uint64) uint64 {
	ch := make(chan uint64, 1)
	go func() { ch <- mix(seed, 1) }() // want `starts a goroutine`
	return <-ch
}

// Salt reaches for the hardware entropy pool.
//
//hpmlint:pure
func Salt(seed uint64) uint64 {
	var b [8]byte
	rand.Read(b[:]) // want `draws from crypto/rand`
	return seed ^ uint64(b[0])
}

// Jitter draws from the global, release-dependent math/rand stream.
//
//hpmlint:pure
func Jitter() float64 {
	return mrand.Float64() // want `draws from math/rand`
}

// Site keys output by ambient process state.
//
//hpmlint:pure
func Site(seed uint64) uint64 {
	site := os.Getenv("HPM_SITE") // want `reads ambient process state via os.Getenv`
	return mix(seed, uint64(len(site)))
}

// Seeded mixes in the boot host name by recorded design decision: the
// suppression keeps the finding out of the report.
//
//hpmlint:pure
func Seeded(seed uint64) uint64 {
	//hpmlint:ignore puretaint the host mix-in is recorded in the run manifest
	host, _ := os.Hostname()
	return mix(seed, uint64(len(host)))
}

// ProfileKey is a clean root: a pure chain through keyOf and hashString
// produces no findings at any depth.
//
//hpmlint:pure
func ProfileKey(cfg string, seed uint64) uint64 {
	return keyOf(cfg, seed)
}

func keyOf(cfg string, seed uint64) uint64 {
	return mix(hashString(cfg), seed)
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// wallClockUnreached is neither annotated nor reachable from a pure root;
// its clock read is not puretaint's business.
func wallClockUnreached() int64 {
	return time.Now().UnixNano()
}
