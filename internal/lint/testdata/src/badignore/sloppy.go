// Package stats is a fixture showing that suppressions without a reason
// do not suppress anything and are themselves reported.
package stats

// Reasonless carries a suppression with no justification: the suppression
// is reported as badignore AND the float comparison is still reported.
func Reasonless(a, b float64) bool {
	//hpmlint:ignore floatcompare
	return a == b
}
