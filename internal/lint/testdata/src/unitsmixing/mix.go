// Package unitsmix is a violation fixture for the unitsmixing analyzer:
// basic-type conversions stripping two different dimensioned types, then
// combining them.
package unitsmix

import (
	"repro/internal/simclock"
	"repro/internal/units"
)

// CyclesPlusSeconds is the classic mistake the units package exists to
// prevent, smuggled past the compiler with float64 conversions.
func CyclesPlusSeconds(c units.Cycles, t simclock.Time) float64 {
	return float64(c) + float64(t) // want `"\+" mixes units\.Cycles and simclock\.Time`
}

// CyclesBeforeBytes orders two unrelated dimensions.
func CyclesBeforeBytes(c units.Cycles, b units.Bytes) bool {
	return uint64(c) < uint64(b) // want `"<" mixes units\.Cycles and units\.Bytes`
}

// FlopsMinusRate subtracts through a double conversion chain.
func FlopsMinusRate(f units.Flops, r units.Rate) float64 {
	return float64(uint64(f)) - float64(r) // want `"-" mixes units\.Flops and units\.Rate`
}

// SameDimension is fine: both sides are cycles.
func SameDimension(a, b units.Cycles) units.Cycles { return a + b }

// ExplicitConversion is the sanctioned form: the seconds are converted to
// cycles before the addition, so the dimensions line up.
func ExplicitConversion(c units.Cycles, t simclock.Time) units.Cycles {
	return c + units.FromSeconds(t.Seconds())
}

// RateBuilding is fine: dividing a count by a time is how rates are made.
func RateBuilding(c units.Cycles, t simclock.Time) float64 {
	return float64(c) / float64(t)
}

// Approved shows a suppression carrying its mandatory reason.
func Approved(c units.Cycles, t simclock.Time) float64 {
	//hpmlint:ignore unitsmixing fixture demonstrating an approved mixed comparison
	return float64(c) + float64(t)
}
