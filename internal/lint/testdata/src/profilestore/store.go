// Package profile is a violation fixture for the memoized measurement
// store: it is named like the production package so the guarded analyzer
// polices it the same way. The store is consulted concurrently by the
// engine workers, so every cache field carries a "guarded by mu"
// annotation — and the tempting lock-free "fast paths" below are exactly
// the bugs the analyzer exists to catch: they never crash, they just
// hand one worker a torn map read or a stale hit counter.
package profile

import "sync"

// measurement stands in for the production measurement record.
type measurement struct {
	kernel string
	instrs uint64
}

// store mirrors the production profile.Store: a mutex and the state it
// protects.
type store struct {
	mu           sync.Mutex
	measurements map[string]measurement // guarded by mu
	hits         uint64                 // guarded by mu
	misses       uint64                 // guarded by mu
}

// lookup takes the lock around the map and the counters: clean.
func (s *store) lookup(key string) (measurement, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.measurements[key]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return m, ok
}

// insertLocked follows the *Locked naming convention for helpers whose
// callers hold the lock: clean.
func (s *store) insertLocked(key string, m measurement) {
	if s.measurements == nil {
		s.measurements = make(map[string]measurement)
	}
	s.measurements[key] = m
}

// add locks, then defers the real work to the Locked helper: clean.
func (s *store) add(key string, m measurement) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(key, m)
}

// len skips the lock for a "read-only" map peek; the runtime is free to
// tear it against a concurrent insert.
func (s *store) len() int {
	return len(s.measurements) // want `s\.measurements is guarded by s\.mu`
}

// hitRate reads both counters with no lock at all — the classic
// monitoring endpoint that reports a rate torn across a concurrent
// lookup.
func (s *store) hitRate() float64 {
	h := s.hits           // want `s\.hits is guarded by s\.mu`
	total := h + s.misses // want `s\.misses is guarded by s\.mu`
	if total == 0 {
		return 0
	}
	return float64(h) / float64(total)
}

// warm holds the lock at spawn time, but the closure runs on its own
// goroutine after warm returns: its writes race with every lookup.
func (s *store) warm(keys []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		for _, k := range keys {
			s.measurements[k] = measurement{kernel: k} // want `s\.measurements is guarded by s\.mu`
			s.misses++                                 // want `s\.misses is guarded by s\.mu`
		}
	}()
}
