// Package power2 is a violation fixture for the nondeterminism analyzer:
// it is named like a simulator package and reaches for wall-clock time and
// the global math/rand stream, both of which make a campaign run
// irreproducible.
package power2

import (
	"math/rand" // want `imports math/rand`
	"time"
)

// Elapsed uses the wall clock twice over.
func Elapsed() float64 {
	start := time.Now()          // want `calls time\.Now`
	d := time.Since(start)       // want `calls time\.Since`
	time.Sleep(time.Millisecond) // want `calls time\.Sleep`
	return d.Seconds()
}

// Jitter draws from the unseeded global stream.
func Jitter() float64 {
	return rand.Float64()
}

// Window is fine: time.Duration is a type, not a clock reading.
func Window(d time.Duration) float64 {
	return d.Seconds()
}

// Approved shows a suppression carrying its mandatory reason.
func Approved() time.Time {
	//hpmlint:ignore nondeterminism fixture demonstrating an approved wall-clock read
	return time.Now()
}
