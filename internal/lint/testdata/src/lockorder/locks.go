// Package lockkit is the lockorder violation fixture. It plants every
// deadlock shape the analyzer must catch — a direct ABBA inversion, a
// cross-struct cycle visible only through the call graph, a self-deadlock
// through a helper, and guarded state escaping its critical section on a
// goroutine — next to a disciplined type that proves one-directional
// nesting stays quiet.
package lockkit

import "sync"

// pair inverts its own two locks directly: lockAB holds a while taking b,
// lockBA holds b while taking a.
type pair struct {
	a sync.Mutex
	b sync.Mutex
	n int // guarded by a
}

func (p *pair) lockAB() {
	p.a.Lock()
	p.b.Lock() // want `completes a lock-order cycle`
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) lockBA() {
	p.b.Lock()
	p.a.Lock() // want `completes a lock-order cycle`
	p.a.Unlock()
	p.b.Unlock()
}

// meter and journal deadlock only interprocedurally: absorb holds
// meter.mu while a call chain takes journal.mu, publish holds journal.mu
// while a call chain takes meter.mu. Neither function is wrong in
// isolation; the cycle exists only in the whole-program acquisition graph.
type meter struct {
	mu   sync.Mutex
	vals map[string]uint64 // guarded by mu
}

type journal struct {
	mu      sync.Mutex
	entries []string // guarded by mu
}

func (m *meter) absorb(j *journal) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.drain() // want `possibly acquiring \(via call to \(\*journal\).drain\)`
}

func (j *journal) drain() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = j.entries[:0]
}

func (j *journal) publish(m *meter) {
	j.mu.Lock()
	defer j.mu.Unlock()
	m.bump() // want `possibly acquiring \(via call to \(\*meter\).bump\)`
}

func (m *meter) bump() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.vals["day"]++
}

// gate deadlocks against itself: Enter holds gate.mu and calls refresh,
// which takes it again.
type gate struct {
	mu sync.Mutex
}

func (g *gate) Enter() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.refresh() // want `while already holding it`
}

func (g *gate) refresh() {
	g.mu.Lock()
	defer g.mu.Unlock()
}

// spool launches a goroutine inside its critical section; the closure
// touches guarded state the lock does not protect on that goroutine.
type spool struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (s *spool) Kick() {
	s.mu.Lock()
	go func() {
		s.n++ // want `accessed in a goroutine launched while`
	}()
	s.mu.Unlock()
}

// relay inverts x and y like pair, but one direction carries a reviewed
// suppression — only the unsuppressed side is reported.
type relay struct {
	x sync.Mutex
	y sync.Mutex
}

func (r *relay) xy() {
	r.x.Lock()
	r.y.Lock() //hpmlint:ignore lockorder fixture: proves suppressions work on cycle reports
	r.y.Unlock()
	r.x.Unlock()
}

func (r *relay) yx() {
	r.y.Lock()
	r.x.Lock() // want `completes a lock-order cycle`
	r.x.Unlock()
	r.y.Unlock()
}

// orderly nests its locks in one global order everywhere; an edge without
// a return path is not a cycle, so none of this is reported.
type orderly struct {
	first  sync.Mutex
	second sync.Mutex
}

func (o *orderly) Both() {
	o.first.Lock()
	o.second.Lock()
	o.second.Unlock()
	o.first.Unlock()
}

func (o *orderly) SecondOnly() {
	o.second.Lock()
	o.second.Unlock()
}
