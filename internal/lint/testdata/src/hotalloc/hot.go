// Package hotkit is the hotalloc violation fixture. It mirrors the shape
// of the POWER2 per-cycle accounting path: a //hpmlint:hotpath root above
// a helper that commits every allocation class the analyzer must catch,
// plus the sanctioned escapes — a panic assertion, a reviewed suppression,
// and cold code off the path.
package hotkit

import "fmt"

type counters struct {
	vals [8]uint64
	log  []uint64
	pool []int
	name string
	fn   func(int)
}

// sink accepts any observation; boxing at its call sites is the finding.
var last interface{}

func sink(v interface{}) { last = v }

// Tick is the annotated root: the per-event accounting path must not
// touch the heap.
//
//hpmlint:hotpath
func (c *counters) Tick(ev int) {
	if ev < 0 {
		// A cannot-happen assertion: the formatting inside panic's
		// arguments is exempt by design.
		panic(fmt.Sprintf("hotkit: negative event %d", ev))
	}
	c.vals[ev&7]++
	c.note(ev)
}

// note is reachable from Tick; every operation below is charged to the
// hot path.
func (c *counters) note(ev int) {
	c.log = append(c.log, uint64(ev)) // want `append may grow its backing array`
	scratch := make([]uint64, 8)      // want `make allocates`
	scratch[0] = uint64(ev)
	fresh := new(counters) // want `new allocates`
	fresh.vals[0] = scratch[0]
	shadow := &counters{name: c.name} // want `address of composite literal escapes to the heap`
	weights := []uint64{1, 2, 4}      // want `slice literal allocates`
	shadow.vals[1] = weights[ev%3]
	c.name = c.name + "!"         // want `string concatenation allocates`
	c.fn = func(int) {}           // want `function literal \(closure\) allocates`
	go c.flush()                  // want `go statement allocates a goroutine`
	s := fmt.Sprintf("ev=%d", ev) // want `calls fmt.Sprintf, which allocates` `argument boxes into interface parameter`
	sink(len(s))                  // want `argument boxes into interface parameter`
	c.fn(ev)                      // want `calls through a function value or interface method`
	//hpmlint:ignore hotalloc the pool doubles a bounded number of times then stabilizes
	c.pool = append(c.pool, ev)
}

// flush is reachable (via the go statement's call edge) and clean.
func (c *counters) flush() {
	for i := range c.vals {
		c.vals[i] = 0
	}
}

// coldSetup is not on any hot path; its allocations are fine.
func coldSetup() *counters {
	return &counters{log: make([]uint64, 0, 1024)}
}
