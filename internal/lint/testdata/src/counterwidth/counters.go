// Package counters is a violation fixture for the counterwidth analyzer:
// raw uint32 arithmetic on register values silently corrupts counts across
// a 32-bit wrap, and raw ordering comparisons answer wrongly across one.
package counters

// Register is a named 32-bit counter type, as a simulated SCU register
// would be; the analyzer sees through the name to the underlying width.
type Register uint32

// BadDelta subtracts raw registers instead of using hpm.Sub.
func BadDelta(before, after uint32) uint64 {
	d := after - before // want `raw "-" arithmetic on uint32`
	if after < before { // want `raw "<" comparison on uint32`
		d = 0
	}
	return uint64(d)
}

// BadAccumulate grows a 32-bit total in place.
func BadAccumulate(regs []Register) Register {
	var total Register
	for _, r := range regs {
		total += r // want `raw "\+=" arithmetic on uint32`
	}
	total++ // want `raw "\+\+" arithmetic on uint32`
	return total
}

// WidenedDelta is fine: both operands are widened to 64 bits first, which
// is what the sanctioned helpers do after wrap-correcting.
func WidenedDelta(before, after uint64) uint64 {
	return after - before
}

// Approved shows a suppression carrying its mandatory reason.
func Approved(a, b uint32) uint32 {
	//hpmlint:ignore counterwidth fixture demonstrating an approved wrap-relying subtraction
	return a - b
}
