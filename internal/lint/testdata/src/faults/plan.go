// Package faults is a violation fixture for the nondeterminism analyzer,
// named after the fault-injection package: a fault plan drawn from the
// wall clock or the global math/rand stream would schedule different
// outages on every run, and a faulted campaign could never be replayed.
package faults

import (
	"math/rand" // want `imports math/rand`
	"time"
)

// Plan is a toy day plan.
type Plan struct {
	Day      int
	DownFrom int
}

// BuildPlan draws the outage start from the global stream and stamps the
// plan with the wall clock — both irreproducible.
func BuildPlan(day, ticks int) Plan {
	start := rand.Intn(ticks)
	_ = time.Now() // want `calls time\.Now`
	return Plan{Day: day, DownFrom: start}
}

// OutageOver polls the wall clock to decide when a simulated outage ends.
func OutageOver(deadline time.Time) bool {
	return time.Since(deadline) > 0 // want `calls time\.Since`
}

// Backoff sleeps real time inside the simulator.
func Backoff() {
	time.Sleep(time.Second) // want `calls time\.Sleep`
}

// Window is fine: time.Duration is a type, not a clock reading.
func Window(d time.Duration) float64 {
	return d.Seconds()
}

// ApprovedJitter shows a suppression carrying its mandatory reason.
func ApprovedJitter() time.Time {
	//hpmlint:ignore nondeterminism fixture demonstrating an approved wall-clock read
	return time.Now()
}
