// Package guarded is a violation fixture for the guarded analyzer: fields
// documented "guarded by mu" touched outside the lock.
package guarded

import "sync"

// tally is shared between a simulation goroutine and a daemon goroutine.
type tally struct {
	mu sync.Mutex
	n  uint64 // guarded by mu
	// orphan is guarded by nosuch, a guard that does not exist.
	orphan int // want `"guarded by nosuch" names no sync\.Mutex/RWMutex field of tally`
}

// Inc locks correctly.
func (t *tally) Inc() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
}

// Racy reads the counter without the lock.
func (t *tally) Racy() uint64 {
	return t.n // want `t\.n is guarded by t\.mu`
}

// totalLocked follows the caller-holds-the-lock naming convention.
func (t *tally) totalLocked() uint64 { return t.n }

// Spawn locks in the method but not in the goroutine it starts; the
// closure is its own scope because it runs concurrently.
func (t *tally) Spawn() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() {
		t.n++ // want `t\.n is guarded by t\.mu`
	}()
}

// Sum locks each element; the base expression matches, so this is clean.
func Sum(ts []*tally) uint64 {
	var total uint64
	for _, t := range ts {
		t.mu.Lock()
		total += t.n
		t.mu.Unlock()
	}
	return total
}

// WrongLock locks one tally but reads another.
func WrongLock(a, b *tally) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want `b\.n is guarded by b\.mu`
}

// Approved shows a suppression carrying its mandatory reason.
func Approved(t *tally) uint64 {
	//hpmlint:ignore guarded fixture demonstrating an approved unguarded read
	return t.n
}
