// Package analysis is a violation fixture for the floatcompare analyzer:
// it is named like a statistics package and compares floats exactly.
package analysis

// Same compares two computed values exactly.
func Same(a, b float64) bool {
	return a == b // want `"==" on floating-point values`
}

// Changed compares a 32-bit float exactly.
func Changed(prev, cur float32) bool {
	return prev != cur // want `"!=" on floating-point values`
}

// MatchesMean compares a computed reduction exactly.
func MatchesMean(xs []float64, want float64) bool {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum/float64(len(xs)) == want // want `"==" on floating-point values`
}

// Close is the sanctioned form: an epsilon comparison.
func Close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// IntEqual is fine: integers compare exactly.
func IntEqual(a, b int) bool { return a == b }

// Approved shows a suppression carrying its mandatory reason.
func Approved(a float64) bool {
	//hpmlint:ignore floatcompare fixture demonstrating an approved exact-zero guard
	return a == 0
}
