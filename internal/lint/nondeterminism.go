package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
)

// simulatorPackages are the packages that model the SP2 and its campaign.
// They must be exactly reproducible from a seed: nine months of simulated
// sampling cannot be validated against the paper's tables if a run depends
// on wall-clock time or on math/rand's unspecified, version-dependent
// stream. Matched by package name so the testdata fixtures exercise the
// rule without living under internal/.
var simulatorPackages = map[string]bool{
	"power2":   true,
	"cluster":  true,
	"hpm":      true,
	"workload": true,
	"mpi":      true,
	"hps":      true,
	"vm":       true,
	"tlb":      true,
	"cache":    true,
	"profile":  true,
	// faults schedules every injected failure from seeded substreams; a
	// wall-clock or math/rand draw there would make outages unreproducible.
	"faults": true,
	// telemetry observes the simulator from inside the same process; its
	// one sanctioned wall-clock read (span.go's monotonic origin) carries a
	// suppression, and everything else must stay off the clock so that
	// enabling observation cannot perturb a seeded campaign.
	"telemetry": true,
	// spec resolves declarative workload scenarios into campaign inputs;
	// resolution must be a pure function of (spec, profiles) so a named
	// scenario means the same campaign on every machine and every run.
	"spec": true,
	// fleet shards a multi-cluster campaign across goroutines and merges
	// in canonical cluster order; a clock or unseeded draw there would
	// break the bit-identical-at-any-shard-count contract the same way it
	// would inside the engine itself.
	"fleet": true,
	// replay records and re-feeds campaign plans; a trace must replay to
	// the recorded run's exact Result, so nothing in the record/decode
	// path may depend on the clock or an unseeded stream.
	"replay": true,
}

// wallClockFuncs are the time-package functions that read or depend on the
// wall clock (or a runtime timer). Simulator code must use
// internal/simclock instead.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Sleep":     true,
}

// NondeterminismAnalyzer flags wall-clock time and global math/rand use in
// simulator packages.
func NondeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nondeterminism",
		Doc:  "simulator packages must use internal/simclock and internal/rng, never wall time or math/rand",
		Run:  runNondeterminism,
	}
}

func runNondeterminism(p *Package) []Diagnostic {
	if !simulatorPackages[p.Name] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(imp.Pos()),
					Rule: "nondeterminism",
					Message: fmt.Sprintf("simulator package %s imports %s; its stream is unspecified across Go releases — use internal/rng (seeded xoshiro256**)",
						p.Name, path),
				})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(sel.Pos()),
					Rule: "nondeterminism",
					Message: fmt.Sprintf("simulator package %s calls time.%s; wall time makes campaign runs irreproducible — use internal/simclock",
						p.Name, sel.Sel.Name),
				})
			}
			return true
		})
	}
	return diags
}
