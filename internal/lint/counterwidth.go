package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CounterWidthAnalyzer flags raw uint32 arithmetic outside internal/hpm.
//
// The RS2HPM hardware registers are 32-bit and wrap every few tens of
// seconds at SP2 rates (the cycles counter wraps every ~64 s at 66.7 MHz).
// The only uint32 values in this repository are raw register contents, and
// the only correct way to combine them is the single-wrap-corrected
// subtraction and the extended 64-bit accumulation that live in
// internal/hpm (hpm.Sub, hpm.Accumulator). Ad-hoc uint32 arithmetic or
// ordering anywhere else silently corrupts counts across a wrap.
func CounterWidthAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "counterwidth",
		Doc:  "uint32 counter arithmetic belongs in internal/hpm's wrap-correction helpers",
		Run:  runCounterWidth,
	}
}

// arithmeticOps wrap silently at 32 bits; relationalOps give wrong answers
// across a wrap (after < before even though the counter only advanced).
var (
	arithmeticOps = map[token.Token]bool{
		token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	}
	arithmeticAssignOps = map[token.Token]bool{
		token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
		token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
	}
	relationalOps = map[token.Token]bool{
		token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
	}
)

func runCounterWidth(p *Package) []Diagnostic {
	// The wrap-correction helpers themselves are the sanctioned home of
	// uint32 arithmetic.
	if strings.HasSuffix(p.Path, "internal/hpm") {
		return nil
	}
	isU32 := func(e ast.Expr) bool {
		t := p.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Kind() == types.Uint32
	}
	var diags []Diagnostic
	report := func(n ast.Node, what string) {
		diags = append(diags, Diagnostic{
			Pos:  p.Fset.Position(n.Pos()),
			Rule: "counterwidth",
			Message: fmt.Sprintf("%s on uint32: 32-bit counter values wrap — use internal/hpm's wrap-correction helpers (hpm.Sub, hpm.Accumulator)",
				what),
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithmeticOps[n.Op] && (isU32(n.X) || isU32(n.Y)) {
					report(n, fmt.Sprintf("raw %q arithmetic", n.Op.String()))
				}
				if relationalOps[n.Op] && (isU32(n.X) || isU32(n.Y)) {
					report(n, fmt.Sprintf("raw %q comparison", n.Op.String()))
				}
			case *ast.AssignStmt:
				if arithmeticAssignOps[n.Tok] && len(n.Lhs) == 1 && isU32(n.Lhs[0]) {
					report(n, fmt.Sprintf("raw %q arithmetic", n.Tok.String()))
				}
			case *ast.IncDecStmt:
				if isU32(n.X) {
					report(n, fmt.Sprintf("raw %q arithmetic", n.Tok.String()))
				}
			}
			return true
		})
	}
	return diags
}
