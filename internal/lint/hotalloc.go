package lint

// hotalloc makes the zero-alloc contracts of PRs 3 and 5 compile-time
// properties. The POWER2 hot path and the hpmtel counters are guarded at
// runtime by AllocsPerRun == 0 benchmarks; those fire after the regression
// runs. hotalloc walks the call graph from every //hpmlint:hotpath
// declaration and reports each statically-detectable heap operation on the
// way — escaping composite literals, make/new, growing append, interface
// boxing, string building, closures — plus two conservative boundaries:
// calls into allocation-happy stdlib packages (fmt and friends), and calls
// through function values or interface methods, which cannot be certified
// at all. A legitimate amortized allocation (a lazily grown pool) carries
// an //hpmlint:ignore hotalloc comment with its justification, so every
// exception to the zero-alloc claim is written down next to the code.

import (
	"fmt"
	"go/token"
)

// HotAllocAnalyzer returns the hotalloc interprocedural analyzer.
func HotAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name:       "hotalloc",
		Doc:        "//hpmlint:hotpath functions and everything they call must be statically free of heap allocation",
		RunProgram: runHotAlloc,
	}
}

func runHotAlloc(prog *Program) []Diagnostic {
	g := prog.CallGraph()
	var roots []*funcNode
	for _, n := range g.nodes {
		if n.hot {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, r := range sortedReaches(g.reachable(roots)) {
		n := r.node
		report := func(pos token.Pos, what string) {
			msg := fmt.Sprintf("%s: %s", n.name(), what)
			if r.from != nil {
				msg = fmt.Sprintf("%s; on the //hpmlint:hotpath of %s (via %s)", msg, r.root.name(), r.via())
			} else {
				msg += "; declared //hpmlint:hotpath"
			}
			diags = append(diags, Diagnostic{
				Pos:     n.pkg.Fset.Position(pos),
				Rule:    "hotalloc",
				Message: msg,
			})
		}

		exempt := panicSpans(n)
		for _, site := range allocSites(n) {
			report(site.pos, site.what)
		}
		for _, e := range n.externs {
			if allocPkgs[e.path] && !inSpans(e.pos, exempt) {
				report(e.pos, fmt.Sprintf("calls %s.%s, which allocates", e.path, e.name))
			}
		}
		for _, pos := range n.dynamics {
			if !inSpans(pos, exempt) {
				report(pos, "calls through a function value or interface method, which cannot be proven allocation-free")
			}
		}
	}
	return dedupDiags(diags)
}
