package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// floatComparePackages are the statistics/validation packages where the
// rule applies. They reduce nine months of counter deltas to the paper's
// table values; an exact == on a float there is almost always a latent
// tolerance bug (the comparison silently starts failing when an upstream
// reduction is reordered). Matched by package name so testdata fixtures
// can exercise the rule.
var floatComparePackages = map[string]bool{
	"analysis": true,
	"stats":    true,
}

// FloatCompareAnalyzer flags == and != on floating-point operands in the
// analysis and stats packages.
func FloatCompareAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "floatcompare",
		Doc:  "analysis/stats must not compare floats with == or != — use an epsilon",
		Run:  runFloatCompare,
	}
}

func runFloatCompare(p *Package) []Diagnostic {
	if !floatComparePackages[p.Name] {
		return nil
	}
	isFloat := func(e ast.Expr) bool {
		t := p.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := p.Info.Types[e]
		return ok && tv.Value != nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(be.X) && !isFloat(be.Y) {
				return true
			}
			// Two constants fold at compile time; nothing can drift.
			if isConst(be.X) && isConst(be.Y) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  p.Fset.Position(be.Pos()),
				Rule: "floatcompare",
				Message: fmt.Sprintf("%q on floating-point values; rounding makes exact equality fragile — compare against an epsilon",
					be.Op.String()),
			})
			return true
		})
	}
	return diags
}
