package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitsMixingAnalyzer flags arithmetic that combines two *different*
// dimensioned quantities after stripping their named types.
//
// internal/units gives cycles, flops, bytes and rates distinct named types
// precisely so the compiler rejects `cycles + bytes`. The hole in that
// protection is a basic-type conversion: `uint64(cyc) + uint64(b)` or
// `float64(cyc) < float64(t)` compile fine and silently mix dimensions —
// the classic cycles-vs-seconds mistake the units package exists to
// prevent. This rule traces each operand of +, -, and the comparison
// operators through basic conversions back to a named unit type and
// reports when the two sides disagree. Converting *between* unit types
// (e.g. units.FromSeconds, or Cycles(x) applied to a dimensionless value)
// stays legal: that is the explicit conversion the rule asks for.
func UnitsMixingAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "unitsmixing",
		Doc:  "do not add/compare two different units (cycles, seconds, bytes, ...) via basic-type conversions",
		Run:  runUnitsMixing,
	}
}

// unitTypeName reports the qualified name of a dimensioned named type, or
// "" for anything else. The dimensioned types are those of internal/units
// plus simclock.Time (seconds).
func unitTypeName(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	switch {
	case strings.HasSuffix(path, "internal/units"):
		switch obj.Name() {
		case "Cycles", "Flops", "Bytes", "Rate":
			return "units." + obj.Name()
		}
	case strings.HasSuffix(path, "internal/simclock"):
		if obj.Name() == "Time" {
			return "simclock.Time"
		}
	}
	return ""
}

// mixingOps are the operators where mixing dimensions is meaningless.
// Multiplication and division are excluded: dividing cycles by seconds is
// how rates are built.
var mixingOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
}

func runUnitsMixing(p *Package) []Diagnostic {
	// provenance traces an expression back to a dimensioned type: either
	// it has one directly, or it is a chain of basic-type conversions
	// applied to one.
	var provenance func(e ast.Expr) string
	provenance = func(e ast.Expr) string {
		e = ast.Unparen(e)
		if u := unitTypeName(p.Info.TypeOf(e)); u != "" {
			return u
		}
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return ""
		}
		// A conversion whose target is a plain basic type strips the
		// dimension without changing the quantity — keep tracing.
		tv, ok := p.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return ""
		}
		if _, basic := tv.Type.Underlying().(*types.Basic); !basic {
			return ""
		}
		if unitTypeName(tv.Type) != "" {
			// Conversion *to* a unit type is the sanctioned explicit form.
			return ""
		}
		return provenance(call.Args[0])
	}

	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !mixingOps[be.Op] {
				return true
			}
			ux, uy := provenance(be.X), provenance(be.Y)
			if ux == "" || uy == "" || ux == uy {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  p.Fset.Position(be.Pos()),
				Rule: "unitsmixing",
				Message: fmt.Sprintf("%q mixes %s and %s; convert explicitly (e.g. Seconds(), FromSeconds) so the dimensions line up",
					be.Op.String(), ux, uy),
			})
			return true
		})
	}
	return diags
}
