package lint

// A conservative cross-package call graph over the type-checked program.
// Nodes are function and method declarations with bodies; edges are the
// statically-resolvable calls between them. Calls the checker cannot pin
// to one body — through a function value, or through an interface method —
// are recorded as dynamic call sites rather than silently dropped, so an
// analyzer that needs soundness (hotalloc on a zero-alloc path) can refuse
// to certify a function that calls through one. Calls that leave the
// module (stdlib) are recorded as extern sites with the callee's import
// path, which is how the taint engines consult their source/denylist
// tables. Function literals are attributed to the declaration that
// lexically contains them: the closure is created there, and for every
// contract hpmlint proves (no clocks, no allocation, lock discipline) the
// conservative direction is to charge the creator.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// funcNode is one declared function or method in the program.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	pure bool // carries //hpmlint:pure
	hot  bool // carries //hpmlint:hotpath

	calls    []callEdge   // statically resolved calls to in-program bodies
	externs  []externCall // calls resolved to functions without in-program bodies
	dynamics []token.Pos  // calls through function values or interface methods
}

// name renders the node for diagnostics: Func or (*Recv).Method, qualified
// with the package name when it is not the reported package.
func (n *funcNode) name() string {
	f := n.obj
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + ptr + named.Obj().Name() + ")." + f.Name()
		}
	}
	return f.Name()
}

// callEdge is one resolved call site.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

// externCall is a call to a function whose body is outside the program
// (standard library, or a module-local declaration without a body).
type externCall struct {
	path string // import path of the defining package ("" for error.Error etc.)
	name string
	pos  token.Pos
}

// callGraph indexes every funcNode by its *types.Func.
type callGraph struct {
	nodes map[*types.Func]*funcNode
}

// CallGraph builds (once) and returns the program's call graph.
func (prog *Program) CallGraph() *callGraph {
	if prog.cg != nil {
		return prog.cg
	}
	g := &callGraph{nodes: make(map[*types.Func]*funcNode)}
	for _, p := range prog.All {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[obj] = &funcNode{
					obj:  obj,
					decl: fd,
					pkg:  p,
					pure: hasDirective(fd, pureDirective),
					hot:  hasDirective(fd, hotpathDirective),
				}
			}
		}
	}
	for _, n := range g.nodes {
		g.addEdges(n)
	}
	prog.cg = g
	return g
}

// addEdges walks one body (function literals included) classifying every
// call expression.
func (g *callGraph) addEdges(n *funcNode) {
	p := n.pkg
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		// A conversion parses as a call; it is the alloc classifier's
		// business, not an edge.
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		callee, dynamic := staticCallee(p, call)
		switch {
		case dynamic:
			n.dynamics = append(n.dynamics, call.Lparen)
		case callee == nil:
			// Builtin (len, append, make, ...) — the classifier's business.
		case g.nodes[callee] != nil:
			n.calls = append(n.calls, callEdge{callee: callee, pos: call.Lparen})
		default:
			path := ""
			if callee.Pkg() != nil {
				path = callee.Pkg().Path()
			}
			n.externs = append(n.externs, externCall{path: path, name: callee.Name(), pos: call.Lparen})
		}
		return true
	})
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// staticCallee resolves a call expression to the single function it must
// invoke, or reports it dynamic when no single body can be proven.
func staticCallee(p *Package, call *ast.CallExpr) (fn *types.Func, dynamic bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch o := p.Info.Uses[fun].(type) {
		case *types.Func:
			return o, false
		case *types.Builtin, *types.TypeName, nil:
			return nil, false
		default: // *types.Var: a function value
			return nil, true
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			switch o := sel.Obj().(type) {
			case *types.Func:
				if types.IsInterface(sel.Recv()) {
					return nil, true // interface method: any implementation
				}
				return o, false
			default: // *types.Var: a func-typed field
				return nil, true
			}
		}
		// Package-qualified: pkg.Fn, pkg.Var, or pkg.Type.
		switch o := p.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			return o, false
		case *types.TypeName, nil:
			return nil, false
		default:
			return nil, true
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is walked as part of the
		// enclosing declaration, so the call itself adds nothing.
		return nil, false
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType,
		*ast.StarExpr, *ast.InterfaceType, *ast.StructType:
		return nil, false // conversion spelled with a type expression
	default:
		return nil, true // call of an arbitrary expression (indexing a func slice, ...)
	}
}

// reach is one function's membership in a reachability closure, with
// enough breadcrumbs to print how annotated code gets there.
type reach struct {
	node *funcNode
	from *reach    // nil for a root
	root *funcNode // the annotated declaration this closure grew from
}

// via renders the call chain from the root to (but excluding) this node;
// empty for a root itself. Long chains elide the middle.
func (r *reach) via() string {
	var chain []string
	for cur := r.from; cur != nil; cur = cur.from {
		chain = append(chain, cur.node.name())
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	if len(chain) > 4 {
		chain = append(chain[:2], append([]string{"..."}, chain[len(chain)-2:]...)...)
	}
	return strings.Join(chain, " -> ")
}

// reachable computes the closure of the given roots over static call
// edges, breadth-first and deterministically: roots in source order, edges
// in body order. Each function keeps the breadcrumb of its first
// discovery.
func (g *callGraph) reachable(roots []*funcNode) map[*funcNode]*reach {
	sort.Slice(roots, func(i, j int) bool { return roots[i].decl.Pos() < roots[j].decl.Pos() })
	out := make(map[*funcNode]*reach)
	var queue []*reach
	for _, r := range roots {
		if out[r] == nil {
			out[r] = &reach{node: r, root: r}
			queue = append(queue, out[r])
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.node.calls {
			callee := g.nodes[e.callee]
			if callee == nil || out[callee] != nil {
				continue
			}
			out[callee] = &reach{node: callee, from: cur, root: cur.root}
			queue = append(queue, out[callee])
		}
	}
	return out
}

// sortedReaches returns the closure in deterministic declaration order.
func sortedReaches(m map[*funcNode]*reach) []*reach {
	out := make([]*reach, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].node.decl.Pos() < out[j].node.decl.Pos() })
	return out
}
