package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedStateAnalyzer enforces the repository's locking convention: a
// struct field whose comment says "guarded by <mu>" may only be read or
// written in a function that locks <mu> on the same receiver/base
// expression, or in a function whose name ends in "Locked" (the convention
// for helpers whose callers hold the lock).
//
// The collector daemons serve TCP snapshots concurrently with the
// simulation goroutine; an unguarded read of a shared counter is exactly
// the class of bug that turns a nine-month campaign into garbage without
// ever crashing.
func GuardedStateAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "guarded",
		Doc:  `fields documented "guarded by <mu>" must only be touched under that mutex`,
		Run:  runGuarded,
	}
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedField records one annotated field.
type guardedField struct {
	structName string
	fieldName  string
	guard      string // sibling mutex field name
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a pointer
// to one.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// fieldComment joins a field's doc and trailing comment text.
func fieldComment(f *ast.Field) string {
	var s string
	if f.Doc != nil {
		s += f.Doc.Text()
	}
	if f.Comment != nil {
		s += " " + f.Comment.Text()
	}
	return s
}

// collectGuarded finds every "guarded by" annotation in the package,
// returning a map from the field's types.Object to its annotation, plus
// diagnostics for annotations that name a missing or non-mutex guard.
func collectGuarded(p *Package) (map[types.Object]guardedField, []Diagnostic) {
	guarded := make(map[types.Object]guardedField)
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// First pass: the struct's mutex fields.
			mutexes := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if obj := p.Info.Defs[name]; obj != nil && isMutexType(obj.Type()) {
						mutexes[name.Name] = true
					}
				}
			}
			// Second pass: annotated fields.
			for _, fld := range st.Fields.List {
				m := guardedByRe.FindStringSubmatch(fieldComment(fld))
				if m == nil {
					continue
				}
				guard := m[1]
				if !mutexes[guard] {
					diags = append(diags, Diagnostic{
						Pos:  p.Fset.Position(fld.Pos()),
						Rule: "guarded",
						Message: fmt.Sprintf("%s: \"guarded by %s\" names no sync.Mutex/RWMutex field of %s",
							fieldNames(fld), guard, ts.Name.Name),
					})
					continue
				}
				for _, name := range fld.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						guarded[obj] = guardedField{
							structName: ts.Name.Name,
							fieldName:  name.Name,
							guard:      guard,
						}
					}
				}
			}
			return true
		})
	}
	return guarded, diags
}

func fieldNames(f *ast.Field) string {
	var names []string
	for _, n := range f.Names {
		names = append(names, n.Name)
	}
	return strings.Join(names, ", ")
}

func runGuarded(p *Package) []Diagnostic {
	guarded, diags := collectGuarded(p)
	if len(guarded) == 0 {
		return diags
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				diags = append(diags, checkScope(p, guarded, fd.Body, fd.Name.Name)...)
			}
		}
	}
	return diags
}

// checkScope inspects one function body. A nested FuncLit is its own
// scope: it may run on another goroutine, so locks taken by the enclosing
// function do not count for it.
func checkScope(p *Package, guarded map[types.Object]guardedField, body *ast.BlockStmt, name string) []Diagnostic {
	var diags []Diagnostic

	// Pass 1: which (base, mutex) pairs does this scope lock?
	locked := make(map[string]bool) // "base.mu" for base.mu.Lock()/RLock()
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if recv, ok := sel.X.(*ast.SelectorExpr); ok {
			locked[types.ExprString(recv.X)+"."+recv.Sel.Name] = true
		} else if id, ok := sel.X.(*ast.Ident); ok {
			// A bare mutex variable (or an embedded mutex in a method
			// whose receiver is implicit) — record under its own name.
			locked[id.Name] = true
		}
		return true
	})

	callerHolds := strings.HasSuffix(name, "Locked")

	// Pass 2: guarded field accesses.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			diags = append(diags, checkScope(p, guarded, fl.Body, name+" (func literal)")...)
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		g, ok := guarded[s.Obj()]
		if !ok {
			return true
		}
		if callerHolds {
			return true
		}
		base := types.ExprString(sel.X)
		if locked[base+"."+g.guard] {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:  p.Fset.Position(sel.Pos()),
			Rule: "guarded",
			Message: fmt.Sprintf("%s.%s is guarded by %s.%s, but %s neither locks it nor is named *Locked",
				base, g.fieldName, base, g.guard, name),
		})
		return true
	})
	return diags
}
