package analysis

import (
	"fmt"

	"repro/internal/workload"
)

// RenderScenario formats the one-line scenario label for a result
// resolved from a workload spec (internal/spec): the name the campaign's
// tables and figures should be read under. A campaign run on the
// built-in default mix — or loaded from a serialized trace, which by
// design does not carry the label — renders nothing.
func RenderScenario(res workload.Result) string {
	if res.Config.Scenario == "" {
		return ""
	}
	return fmt.Sprintf("=== scenario: %s ===", res.Config.Scenario)
}
