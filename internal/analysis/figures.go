package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asciichart"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure1Data is the system performance history (paper Figure 1).
type Figure1Data struct {
	DailyGflops []float64
	MovingAvg   []float64
	Utilization []float64
	UtilAvg     []float64
	MeanGflops  float64
	MaxGflops   float64
	MeanUtil    float64
	MaxUtil     float64
}

// movingWindow is the smoothing window used for the figure's moving
// averages (the paper does not state its window; two weeks reads well).
const movingWindow = 14

// ComputeFigure1 builds the daily series. Rates come through the
// coverage-aware day helpers so a faulted campaign's gappy record is
// reduced over observed node-seconds; utilisation stays scheduler truth
// (busy node-seconds are known exactly whether or not samples arrived).
func ComputeFigure1(res workload.Result) Figure1Data {
	var daily, util []float64
	for i, d := range res.Days {
		daily = append(daily, res.DayGflops(i))
		util = append(util, d.Utilization(res.Config.Nodes))
	}
	return figure1FromSeries(daily, util)
}

// figure1FromSeries finishes Figure 1 from the per-day series — shared by
// the Result path above and the streaming collector (Stream), which feeds
// the same arithmetic one day at a time.
func figure1FromSeries(daily, util []float64) Figure1Data {
	f := Figure1Data{DailyGflops: daily, Utilization: util}
	f.MovingAvg = stats.MovingAverage(f.DailyGflops, movingWindow)
	f.UtilAvg = stats.MovingAverage(f.Utilization, movingWindow)
	f.MeanGflops = stats.Mean(f.DailyGflops)
	f.MaxGflops = stats.Max(f.DailyGflops)
	f.MeanUtil = stats.Mean(f.Utilization)
	f.MaxUtil = stats.Max(f.Utilization)
	return f
}

// Render draws Figure 1: daily rate, moving average, and utilisation
// (scaled onto the Gflops axis, as the paper's right-hand axis does).
func (f Figure1Data) Render() string {
	utilScale := 4.0 // 1.0 utilisation -> 4 Gflops on the shared axis
	scaled := make([]float64, len(f.UtilAvg))
	for i, u := range f.UtilAvg {
		scaled[i] = u * utilScale
	}
	chart := asciichart.LineChart(
		"Figure 1: NAS SP2 System Performance History (GFLOPS by day)",
		100, 20,
		asciichart.Series{Glyph: '.', Label: "daily rate", Values: f.DailyGflops},
		asciichart.Series{Glyph: '*', Label: "daily rate, 14-day moving avg", Values: f.MovingAvg},
		asciichart.Series{Glyph: 'u', Label: fmt.Sprintf("utilization moving avg (x%.0f)", utilScale), Values: scaled},
	)
	return chart + fmt.Sprintf(
		"daily mean %.2f Gflops [paper ~1.3], max %.2f [3.4]; utilization mean %.0f%% [64%%], max %.0f%% [95%%]\n",
		f.MeanGflops, f.MaxGflops, 100*f.MeanUtil, 100*f.MaxUtil)
}

// Figure2Data is batch-job walltime by nodes requested (paper Figure 2).
type Figure2Data struct {
	NodeCounts []int
	Walltime   []float64 // seconds, same order as NodeCounts
	PeakNodes  int       // the most popular choice (paper: 16)
	Over64Frac float64
}

// ComputeFigure2 aggregates record walltime by node count.
func ComputeFigure2(res workload.Result) Figure2Data {
	byNodes := map[int]float64{}
	total, over := 0.0, 0.0
	for _, r := range res.Records {
		byNodes[r.NodesUsed] += r.WallSeconds
		total += r.WallSeconds
		if r.NodesUsed > 64 {
			over += r.WallSeconds
		}
	}
	var f Figure2Data
	for n := range byNodes {
		f.NodeCounts = append(f.NodeCounts, n)
	}
	sort.Ints(f.NodeCounts)
	best := 0.0
	for _, n := range f.NodeCounts {
		w := byNodes[n]
		f.Walltime = append(f.Walltime, w)
		if w > best {
			best, f.PeakNodes = w, n
		}
	}
	if total > 0 {
		f.Over64Frac = over / total
	}
	return f
}

// Render draws Figure 2.
func (f Figure2Data) Render() string {
	labels := make([]string, len(f.NodeCounts))
	for i, n := range f.NodeCounts {
		labels[i] = fmt.Sprintf("%d", n)
	}
	chart := asciichart.BarChart(
		"Figure 2: Batch Job Walltime as a Function of Nodes Requested (seconds)",
		labels, f.Walltime, 60)
	return chart + fmt.Sprintf("peak at %d nodes [paper: 16]; >64-node share %.1f%% [~0%%]\n",
		f.PeakNodes, 100*f.Over64Frac)
}

// Figure3Data is per-node job performance vs nodes requested (Figure 3).
type Figure3Data struct {
	Nodes        []float64
	MflopsPer    []float64
	MeanUpTo64   float64
	MeanBeyond64 float64
	PeakMflops   float64
}

// ComputeFigure3 extracts one point per batch record.
func ComputeFigure3(res workload.Result) Figure3Data {
	var f Figure3Data
	var small, large []float64
	for _, r := range res.Records {
		mf := r.PerNodeRates().MflopsAll
		f.Nodes = append(f.Nodes, float64(r.NodesUsed))
		f.MflopsPer = append(f.MflopsPer, mf)
		if r.NodesUsed > 64 {
			large = append(large, mf)
		} else {
			small = append(small, mf)
		}
		if mf > f.PeakMflops {
			f.PeakMflops = mf
		}
	}
	f.MeanUpTo64 = stats.Mean(small)
	f.MeanBeyond64 = stats.Mean(large)
	return f
}

// Render draws Figure 3.
func (f Figure3Data) Render() string {
	chart := asciichart.Scatter(
		"Figure 3: Batch Job Performance vs Nodes Requested (Mflops per node)",
		100, 18, f.Nodes, f.MflopsPer, 'o')
	return chart + fmt.Sprintf(
		"mean <=64 nodes %.1f Mflops/node; mean >64 nodes %.1f [sharp decrease]; peak %.1f [~40]\n",
		f.MeanUpTo64, f.MeanBeyond64, f.PeakMflops)
}

// Figure4Data is the 16-node job performance history (Figure 4).
type Figure4Data struct {
	JobMflops   []float64 // whole-job Mflops in job-ID order
	MovingAvg   []float64
	Mean        float64 // paper: ~320
	Std         float64 // paper: ~200 ("variance")
	TrendPerJob float64 // least-squares slope; paper: no trend
}

// ComputeFigure4 extracts the 16-node slice in job order (the paper's
// "most popular selection").
func ComputeFigure4(res workload.Result) Figure4Data {
	return ComputeFigure4For(res, 16)
}

// Render draws Figure 4.
func (f Figure4Data) Render() string {
	chart := asciichart.LineChart(
		"Figure 4: NAS SP2 16-node Performance Histories (job Mflops by batch job number)",
		100, 18,
		asciichart.Series{Glyph: '.', Label: "16-node job rate", Values: f.JobMflops},
		asciichart.Series{Glyph: '*', Label: "moving average", Values: f.MovingAvg},
	)
	return chart + fmt.Sprintf(
		"mean %.0f Mflops [paper ~320], spread (std) %.0f [~200], trend %.3f Mflops/job [no trend]\n",
		f.Mean, f.Std, f.TrendPerJob)
}

// Figure5Data is node performance vs system intervention (Figure 5).
type Figure5Data struct {
	Ratio     []float64 // per-day system/user FXU ratio
	MflopsPer []float64 // per-day per-node Mflops
	Corr      float64   // negative: paging days perform worse
}

// ComputeFigure5 extracts one point per campaign day with any activity.
func ComputeFigure5(res workload.Result) Figure5Data {
	var f Figure5Data
	for i, d := range res.Days {
		//hpmlint:ignore floatcompare exact zero means "no samples accumulated", not a computed value
		if d.BusyNodeSeconds == 0 {
			continue
		}
		ratio := d.SystemUserFXURatio()
		if ratio > 5 {
			ratio = 5 // the paper's axis tops out at 5
		}
		f.Ratio = append(f.Ratio, ratio)
		f.MflopsPer = append(f.MflopsPer, res.DayPerNodeRates(i).MflopsAll)
	}
	f.Corr = stats.Correlation(f.Ratio, f.MflopsPer)
	return f
}

// Render draws Figure 5.
func (f Figure5Data) Render() string {
	chart := asciichart.Scatter(
		"Figure 5: Node Performance vs System Intervention (Mflops/node vs system-FXU/user-FXU)",
		100, 18, f.Ratio, f.MflopsPer, 'x')
	return chart + fmt.Sprintf(
		"correlation %.2f [negative: high system intervention on below-average days]\n", f.Corr)
}

// RenderAll produces every figure in order.
func RenderAll(res workload.Result) string {
	var b strings.Builder
	b.WriteString(ComputeFigure1(res).Render())
	b.WriteString("\n")
	b.WriteString(ComputeFigure2(res).Render())
	b.WriteString("\n")
	b.WriteString(ComputeFigure3(res).Render())
	b.WriteString("\n")
	b.WriteString(ComputeFigure4(res).Render())
	b.WriteString("\n")
	b.WriteString(ComputeFigure5(res).Render())
	return b.String()
}

// ComputeFigure4For generalises Figure 4 to any node count — the paper
// notes "similar trends occur for other processor counts".
func ComputeFigure4For(res workload.Result, nodes int) Figure4Data {
	type pair struct {
		id int
		mf float64
	}
	var ps []pair
	for _, r := range res.Records {
		if r.NodesUsed == nodes {
			ps = append(ps, pair{r.JobID, r.JobMflops()})
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].id < ps[j].id })
	var f Figure4Data
	var idx []float64
	for i, p := range ps {
		f.JobMflops = append(f.JobMflops, p.mf)
		idx = append(idx, float64(i))
	}
	f.MovingAvg = stats.MovingAverage(f.JobMflops, 25)
	f.Mean = stats.Mean(f.JobMflops)
	f.Std = stats.StdDev(f.JobMflops)
	f.TrendPerJob, _ = stats.LinearFit(idx, f.JobMflops)
	return f
}

// UserRow is one user's accounting summary.
type UserRow struct {
	User            string
	Jobs            int
	NodeSeconds     float64
	WeightedMflops  float64 // walltime-weighted per-node rate
	WorstSysUserFXU float64
}

// UserReport summarises the batch database by user — the view the paper
// says "users and system personnel may examine and analyze".
type UserReport struct {
	Rows []UserRow // sorted by node-seconds, descending
}

// ComputeUserReport aggregates the records per user.
func ComputeUserReport(res workload.Result) UserReport {
	type agg struct {
		jobs    int
		ns      float64
		mfW     float64
		wallSum float64
		worst   float64
	}
	users := map[string]*agg{}
	for _, r := range res.Records {
		a := users[r.User]
		if a == nil {
			a = &agg{}
			users[r.User] = a
		}
		a.jobs++
		a.ns += float64(r.NodesUsed) * r.WallSeconds
		a.mfW += r.PerNodeRates().MflopsAll * r.WallSeconds
		a.wallSum += r.WallSeconds
		if ratio := r.SystemUserFXURatio(); ratio > a.worst {
			a.worst = ratio
		}
	}
	var rep UserReport
	for u, a := range users {
		row := UserRow{User: u, Jobs: a.jobs, NodeSeconds: a.ns, WorstSysUserFXU: a.worst}
		if a.wallSum > 0 {
			row.WeightedMflops = a.mfW / a.wallSum
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		//hpmlint:ignore floatcompare sort tie-break needs exact comparison for a total order
		if rep.Rows[i].NodeSeconds != rep.Rows[j].NodeSeconds {
			return rep.Rows[i].NodeSeconds > rep.Rows[j].NodeSeconds
		}
		return rep.Rows[i].User < rep.Rows[j].User
	})
	return rep
}

// Render formats the top of the user report.
func (u UserReport) Render(top int) string {
	var b strings.Builder
	b.WriteString("Per-user batch accounting (node-seconds, walltime-weighted Mflops/node)\n")
	fmt.Fprintf(&b, "%-6s %6s %14s %12s %14s\n", "user", "jobs", "node-seconds", "Mflops/node", "worst sys/user")
	for i, r := range u.Rows {
		if top > 0 && i >= top {
			fmt.Fprintf(&b, "... and %d more users\n", len(u.Rows)-top)
			break
		}
		fmt.Fprintf(&b, "%-6s %6d %14.0f %12.1f %14.2f\n",
			r.User, r.Jobs, r.NodeSeconds, r.WeightedMflops, r.WorstSysUserFXU)
	}
	return b.String()
}
