package analysis

import (
	"testing"

	"repro/internal/workload"
)

func TestRenderScenario(t *testing.T) {
	var res workload.Result
	if got := RenderScenario(res); got != "" {
		t.Errorf("unlabelled result rendered %q, want nothing", got)
	}
	res.Config.Scenario = "bursty"
	if got := RenderScenario(res); got != "=== scenario: bursty ===" {
		t.Errorf("RenderScenario = %q", got)
	}
}
