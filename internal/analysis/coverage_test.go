package analysis

// Tests for the coverage-aware reduction path: a faulted campaign's
// figures and tables are computed over observed node-seconds, not the
// wall clock, and the coverage renderer reports what was lost.

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/profile"
	"repro/internal/workload"
)

var (
	faultedOnce sync.Once
	faultedRes  workload.Result
)

// faultedCampaign runs a short campaign with an aggressive lossy mix once
// for the whole package.
func faultedCampaign(t *testing.T) workload.Result {
	t.Helper()
	faultedOnce.Do(func() {
		cfg := workload.DefaultConfig(29)
		cfg.Days = 6
		f := faults.Default()
		f.CrashProbPerNodeDay = 0.05 // enough outages to move coverage visibly
		cfg.Faults = &f
		std := profile.MeasureStandard(29)
		faultedRes = workload.NewCampaign(cfg, workload.DefaultMix(std)).Run()
	})
	return faultedRes
}

func TestRenderCoverageEmptyWithoutFaults(t *testing.T) {
	if s := RenderCoverage(campaign(t)); s != "" {
		t.Fatalf("clean campaign rendered a coverage report:\n%s", s)
	}
}

func TestRenderCoverageReportsLosses(t *testing.T) {
	res := faultedCampaign(t)
	if res.Coverage == nil || res.Coverage.Total.Captured == res.Coverage.Total.Expected {
		t.Fatal("faulted campaign lost nothing; the test exercises no gap")
	}
	s := RenderCoverage(res)
	for _, want := range []string{"coverage report", "captured", "worst day"} {
		if !strings.Contains(s, want) {
			t.Errorf("coverage render missing %q:\n%s", want, s)
		}
	}
}

// TestFaultedFiguresUseCoveredTime: Figure 1 carries the coverage-aware
// per-day rates, and on days whose record stayed within their own wall
// clock the correction never lowers the rate (same delta, no larger a
// divisor). Days whose first capture bridged midnight may dip below the
// naive rate — the bridged interval's seconds arrive with its counts.
func TestFaultedFiguresUseCoveredTime(t *testing.T) {
	res := faultedCampaign(t)
	f1 := ComputeFigure1(res)
	if len(f1.DailyGflops) != len(res.Days) {
		t.Fatalf("figure 1 has %d days, campaign has %d", len(f1.DailyGflops), len(res.Days))
	}
	wall := 86400 * float64(res.Config.Nodes)
	corrected := false
	for i, d := range res.Days {
		naive := d.Gflops()
		aware := res.DayGflops(i)
		if res.DayCoveredNodeSeconds(i) <= wall && aware < naive-1e-9 {
			t.Errorf("day %d: coverage-aware rate %.3f below naive %.3f despite a within-day record", i, aware, naive)
		}
		if aware > naive+1e-9 {
			corrected = true
		}
		if f1.DailyGflops[i] != aware {
			t.Errorf("day %d: figure 1 carries %.3f, coverage-aware rate is %.3f", i, f1.DailyGflops[i], aware)
		}
	}
	if !corrected {
		t.Error("no day's rate was corrected upward; the fault mix left no gaps")
	}
}

// TestFaultedTablesReduceOverCoveredTime: the good-day machinery and the
// pooled-rate divisor both follow the ledger on a faulted campaign.
func TestFaultedTablesReduceOverCoveredTime(t *testing.T) {
	res := faultedCampaign(t)
	good := goodDayIndices(res)
	if len(good) == 0 {
		t.Skip("no good days in the faulted window")
	}
	t2 := ComputeTable2(res)
	if t2.GoodDays != len(good) {
		t.Fatalf("Table 2 counted %d good days, index form found %d", t2.GoodDays, len(good))
	}
	covered := 0.0
	for _, i := range good {
		covered += res.DayCoveredNodeSeconds(i)
	}
	if wall := 86400 * float64(res.Config.Nodes) * float64(len(good)); covered >= wall {
		t.Fatalf("faulted sample claims full coverage (%.0f of %.0f node-seconds)", covered, wall)
	}
	if r := pooledRates(res, good); r.MflopsAll <= 0 {
		t.Fatalf("pooled rates over covered time are empty: %+v", r)
	}
}
