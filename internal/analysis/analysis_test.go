package analysis

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/profile"
	"repro/internal/spec"
	"repro/internal/workload"
)

var (
	resOnce   sync.Once
	res       workload.Result
	resStream *Stream
)

// campaign runs a 45-day campaign once for the whole test package; long
// enough for every figure to have a populated sample. The workload comes
// from the paper-1996 spec preset — bit-identical to the old hard-coded
// DefaultMix, but the result now carries the scenario label the
// conformance scorecard prints. The reduction is teed into both the
// batch Result and the streaming collector so the two analysis paths can
// be cross-checked against the same run.
func campaign(t *testing.T) workload.Result {
	t.Helper()
	resOnce.Do(func() {
		sp, err := spec.Preset("paper-1996")
		if err != nil {
			t.Fatalf("paper-1996 preset: %v", err)
		}
		std := profile.MeasureStandard(11)
		cfg, mix, err := spec.Resolve(sp, std)
		if err != nil {
			t.Fatalf("resolving paper-1996: %v", err)
		}
		cfg.Seed = 11
		cfg.Days = 45
		var rr workload.ResultReducer
		resStream = NewStream(cfg.Nodes)
		workload.NewCampaign(cfg, mix).
			RunInto(workload.TeeReducer{&rr, resStream})
		res = rr.Result()
	})
	return res
}

func TestRenderTable1ListsAllCounters(t *testing.T) {
	s := RenderTable1()
	for _, label := range []string{"user.fxu0", "user.tlb_mis", "fpop.fp_muladd", "user.dma_write", "user.icache_reload"} {
		if !strings.Contains(s, label) {
			t.Errorf("Table 1 missing %q", label)
		}
	}
	if got := strings.Count(s, "\n"); got != 24 { // title + header + 22 rows
		t.Errorf("Table 1 has %d lines, want 24", got)
	}
}

func TestTable2Bands(t *testing.T) {
	t2 := ComputeTable2(campaign(t))
	if t2.GoodDays == 0 {
		t.Skip("no good days in window")
	}
	// Paper: Mflops 17.4 +/- 3.8, Mips 45.7 +/- 10.5, Mops 48.3 +/- 10.2.
	if t2.AvgMflops < 11 || t2.AvgMflops > 24 {
		t.Errorf("AvgMflops = %.1f, want ~17.4", t2.AvgMflops)
	}
	if t2.AvgMips < 28 || t2.AvgMips > 65 {
		t.Errorf("AvgMips = %.1f, want ~45.7", t2.AvgMips)
	}
	if t2.AvgMops < t2.AvgMips {
		t.Errorf("Mops (%.1f) must exceed Mips (%.1f): flops exceed FPU instructions", t2.AvgMops, t2.AvgMips)
	}
	// Good-day utilisation ~76%.
	if t2.AvgUtil < 0.55 || t2.AvgUtil > 1.0 {
		t.Errorf("good-day utilization = %.2f, want ~0.76", t2.AvgUtil)
	}
	// Representative day close to the average.
	if math.Abs(t2.Day.MflopsAll-t2.AvgMflops) > 2.5*t2.StdMflops+1 {
		t.Errorf("representative day %.1f too far from avg %.1f", t2.Day.MflopsAll, t2.AvgMflops)
	}
	s := t2.Render()
	if !strings.Contains(s, "Mips") || !strings.Contains(s, "Mflops") {
		t.Fatalf("Table 2 render broken:\n%s", s)
	}
}

func TestTable3Structure(t *testing.T) {
	t3 := ComputeTable3(campaign(t))
	if len(t3.Sections) != 4 {
		t.Fatalf("sections = %d, want OPS/INST/CACHE/I-O", len(t3.Sections))
	}
	rows := 0
	for _, sec := range t3.Sections {
		rows += len(sec.Rows)
	}
	if rows != 17 {
		t.Fatalf("rows = %d, want 17 (as in the paper)", rows)
	}
	s := t3.Render()
	for _, want := range []string{"Mflops-fma", "Mips-Fixed Point (Unit 1)", "TLB-Million/S", "DMA reads"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestTable3DerivedStatistics(t *testing.T) {
	t3 := ComputeTable3(campaign(t))
	if t3.DayIndex == 0 && len(GoodDays(campaign(t))) == 0 {
		t.Skip("no good days")
	}
	// fma share ~54% (band 40-65).
	if t3.FMAFraction < 0.40 || t3.FMAFraction > 0.65 {
		t.Errorf("fma fraction = %.2f, want ~0.54", t3.FMAFraction)
	}
	// FPU asymmetry ~1.7 (band 1.2-2.5).
	if t3.FPUAsymmetry < 1.2 || t3.FPUAsymmetry > 2.5 {
		t.Errorf("FPU asymmetry = %.2f, want ~1.7", t3.FPUAsymmetry)
	}
	// flops/memref ~0.5-0.9 (paper 0.53 with FP refs, 0.63 FXU-based).
	if t3.FlopsPerMem < 0.35 || t3.FlopsPerMem > 1.1 {
		t.Errorf("flops/memref = %.2f, want ~0.6", t3.FlopsPerMem)
	}
	// cache ratio ~1%, TLB ~0.1%.
	if t3.CacheRatio < 0.003 || t3.CacheRatio > 0.02 {
		t.Errorf("cache ratio = %.4f, want ~0.01", t3.CacheRatio)
	}
	if t3.TLBRatio < 0.0002 || t3.TLBRatio > 0.003 {
		t.Errorf("TLB ratio = %.5f, want ~0.001", t3.TLBRatio)
	}
	// Divide row must be zero (the counter bug).
	for _, sec := range t3.Sections {
		for _, row := range sec.Rows {
			if row.Label == "Mflops-div" && (row.Avg != 0 || row.Day != 0) {
				t.Errorf("Mflops-div = %v/%v, want 0", row.Day, row.Avg)
			}
		}
	}
	// Delay per memory reference ~0.12 cycles (band 0.04-0.4).
	if t3.DelayPerMem < 0.04 || t3.DelayPerMem > 0.4 {
		t.Errorf("delay/memref = %.3f, want ~0.12", t3.DelayPerMem)
	}
	// FXU1 > FXU0 in the table rows.
	var fxu0, fxu1 float64
	for _, sec := range t3.Sections {
		for _, row := range sec.Rows {
			switch row.Label {
			case "Mips-Fixed Point (Unit 0)":
				fxu0 = row.Avg
			case "Mips-Fixed Point (Unit 1)":
				fxu1 = row.Avg
			}
		}
	}
	if fxu1 <= fxu0 {
		t.Errorf("FXU1 (%.1f) should exceed FXU0 (%.1f)", fxu1, fxu0)
	}
}

func TestSequentialRowMatchesThoughtExperiment(t *testing.T) {
	row := MeasureSequentialRow(1, 200000)
	if row.CacheMissRatio < 0.025 || row.CacheMissRatio > 0.04 {
		t.Errorf("sequential cache ratio = %.4f, want ~0.031", row.CacheMissRatio)
	}
	if row.TLBMissRatio < 0.0015 || row.TLBMissRatio > 0.0025 {
		t.Errorf("sequential TLB ratio = %.5f, want ~0.002", row.TLBMissRatio)
	}
	if row.MflopsPerCPU != 0 {
		t.Error("sequential Mflops cell should be blank")
	}
}

func TestBT49RowMatchesTable4(t *testing.T) {
	row := MeasureBT49Row(DefaultBT49())
	// Paper: 44 Mflops/CPU (band 30-60 — comm ratio sets it).
	if row.MflopsPerCPU < 30 || row.MflopsPerCPU > 60 {
		t.Errorf("BT49 Mflops/CPU = %.1f, want ~44", row.MflopsPerCPU)
	}
	// Cache ratio ~1.2%, TLB ratio 0.06% — notably below the workload's.
	if row.CacheMissRatio < 0.004 || row.CacheMissRatio > 0.025 {
		t.Errorf("BT49 cache ratio = %.4f, want ~0.012", row.CacheMissRatio)
	}
	if row.TLBMissRatio > 0.001 {
		t.Errorf("BT49 TLB ratio = %.5f, want ~0.0006", row.TLBMissRatio)
	}
}

func TestTable4Ordering(t *testing.T) {
	r := campaign(t)
	seq := MeasureSequentialRow(1, 200000)
	bt := MeasureBT49Row(DefaultBT49())
	t4 := ComputeTable4(r, seq, bt)
	// The paper's ordering: sequential access has the worst cache ratio;
	// BT outperforms the workload average per CPU; BT's TLB ratio is the
	// best of the three.
	if !(t4.Sequential.CacheMissRatio > t4.Workload.CacheMissRatio) {
		t.Errorf("cache ratio ordering: seq %.4f vs workload %.4f",
			t4.Sequential.CacheMissRatio, t4.Workload.CacheMissRatio)
	}
	if t4.Workload.MflopsPerCPU > 0 && !(t4.BT49.MflopsPerCPU > t4.Workload.MflopsPerCPU) {
		t.Errorf("Mflops ordering: BT %.1f vs workload %.1f",
			t4.BT49.MflopsPerCPU, t4.Workload.MflopsPerCPU)
	}
	if !(t4.BT49.TLBMissRatio < t4.Sequential.TLBMissRatio) {
		t.Errorf("TLB ordering: BT %.5f vs seq %.5f",
			t4.BT49.TLBMissRatio, t4.Sequential.TLBMissRatio)
	}
	s := t4.Render()
	if !strings.Contains(s, "Cache Miss Ratio") || !strings.Contains(s, "NPB BT") {
		t.Fatalf("Table 4 render broken:\n%s", s)
	}
}

func TestFigure1(t *testing.T) {
	f := ComputeFigure1(campaign(t))
	if len(f.DailyGflops) != 45 || len(f.MovingAvg) != 45 {
		t.Fatalf("series lengths %d/%d", len(f.DailyGflops), len(f.MovingAvg))
	}
	if f.MeanGflops <= 0 || f.MaxGflops < f.MeanGflops {
		t.Fatalf("gflops stats broken: mean %v max %v", f.MeanGflops, f.MaxGflops)
	}
	if f.MeanUtil <= 0.2 || f.MaxUtil > 1.0001 {
		t.Fatalf("util stats broken: mean %v max %v", f.MeanUtil, f.MaxUtil)
	}
	s := f.Render()
	if !strings.Contains(s, "Figure 1") || !strings.Contains(s, "moving avg") {
		t.Fatal("Figure 1 render broken")
	}
}

func TestStreamMatchesBatchFigure1(t *testing.T) {
	batch := ComputeFigure1(campaign(t))
	streamed := resStream.Figure1()
	if resStream.Days() != len(campaign(t).Days) {
		t.Fatalf("stream saw %d days, result has %d", resStream.Days(), len(campaign(t).Days))
	}
	sameSeries := func(name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: series lengths %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("%s[%d]: stream %v vs batch %v", name, i, a[i], b[i])
			}
		}
	}
	sameSeries("DailyGflops", streamed.DailyGflops, batch.DailyGflops)
	sameSeries("Utilization", streamed.Utilization, batch.Utilization)
	sameSeries("MovingAvg", streamed.MovingAvg, batch.MovingAvg)
	sameSeries("UtilAvg", streamed.UtilAvg, batch.UtilAvg)
	for _, p := range []struct {
		name string
		s, b float64
	}{
		{"MeanGflops", streamed.MeanGflops, batch.MeanGflops},
		{"MaxGflops", streamed.MaxGflops, batch.MaxGflops},
		{"MeanUtil", streamed.MeanUtil, batch.MeanUtil},
		{"MaxUtil", streamed.MaxUtil, batch.MaxUtil},
	} {
		if math.Abs(p.s-p.b) > 1e-12 {
			t.Errorf("%s: stream %v vs batch %v", p.name, p.s, p.b)
		}
	}
	fin := resStream.Final()
	if math.Abs(fin.MaxGflops15min-campaign(t).MaxGflops15min) > 1e-12 {
		t.Errorf("Final.MaxGflops15min %v vs Result %v", fin.MaxGflops15min, campaign(t).MaxGflops15min)
	}
	if len(fin.Records) != len(campaign(t).Records) {
		t.Errorf("Final carried %d records, Result %d", len(fin.Records), len(campaign(t).Records))
	}
}

func TestFigure2(t *testing.T) {
	f := ComputeFigure2(campaign(t))
	if f.PeakNodes != 16 {
		t.Errorf("peak at %d nodes, want 16", f.PeakNodes)
	}
	if f.Over64Frac > 0.1 {
		t.Errorf(">64-node share = %.2f, want near zero", f.Over64Frac)
	}
	if !strings.Contains(f.Render(), "Figure 2") {
		t.Fatal("render broken")
	}
}

func TestFigure3(t *testing.T) {
	f := ComputeFigure3(campaign(t))
	if len(f.Nodes) == 0 {
		t.Fatal("no points")
	}
	if len(f.Nodes) != len(f.MflopsPer) {
		t.Fatal("length mismatch")
	}
	if f.MeanBeyond64 > 0 && f.MeanBeyond64 > f.MeanUpTo64/2 {
		t.Errorf("no collapse beyond 64: %.1f vs %.1f", f.MeanBeyond64, f.MeanUpTo64)
	}
	// Peak per-node rate ~40 Mflops (tuned codes), certainly under 70.
	if f.PeakMflops < 20 || f.PeakMflops > 75 {
		t.Errorf("peak per-node = %.1f, want ~40", f.PeakMflops)
	}
	if !strings.Contains(f.Render(), "Figure 3") {
		t.Fatal("render broken")
	}
}

func TestFigure4(t *testing.T) {
	f := ComputeFigure4(campaign(t))
	if len(f.JobMflops) < 30 {
		t.Fatalf("only %d 16-node jobs", len(f.JobMflops))
	}
	// Paper: average 320 Mflops with spread ~200 (bands 180..450, 80..330).
	if f.Mean < 180 || f.Mean > 450 {
		t.Errorf("16-node mean = %.0f, want ~320", f.Mean)
	}
	if f.Std < 60 || f.Std > 330 {
		t.Errorf("16-node std = %.0f, want ~200", f.Std)
	}
	// No improvement trend: drift over the whole history stays well under
	// the mean level.
	if math.Abs(f.TrendPerJob)*float64(len(f.JobMflops)) > f.Mean {
		t.Errorf("trend %.3f Mflops/job too steep", f.TrendPerJob)
	}
	if !strings.Contains(f.Render(), "Figure 4") {
		t.Fatal("render broken")
	}
}

func TestFigure5(t *testing.T) {
	f := ComputeFigure5(campaign(t))
	if len(f.Ratio) == 0 {
		t.Fatal("no points")
	}
	if f.Corr >= 0 {
		t.Errorf("correlation = %.2f, want negative (Figure 5's shape)", f.Corr)
	}
	for _, r := range f.Ratio {
		if r < 0 || r > 5 {
			t.Fatalf("ratio %v outside the paper's axis", r)
		}
	}
	if !strings.Contains(f.Render(), "Figure 5") {
		t.Fatal("render broken")
	}
}

func TestRenderAllContainsEveryFigure(t *testing.T) {
	s := RenderAll(campaign(t))
	for _, fig := range []string{"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5"} {
		if !strings.Contains(s, fig) {
			t.Errorf("RenderAll missing %s", fig)
		}
	}
}

func TestIOWaitWhatIf(t *testing.T) {
	w := MeasureIOWaitWhatIf(3)
	// The paging node: Figure 5's inference works (sys/user >> 1) AND the
	// direct measurement shows a dominant wait fraction.
	if w.Paging.NASSysUserFXU < 1 {
		t.Errorf("paging NAS sys/user = %.2f, want > 1", w.Paging.NASSysUserFXU)
	}
	if w.Paging.WaitFraction < 0.3 || w.Paging.WaitFraction > 1.0 {
		t.Errorf("paging wait fraction = %.2f, want dominant", w.Paging.WaitFraction)
	}
	if w.Paging.PageIns == 0 {
		t.Error("paging scenario recorded no page-ins")
	}
	// The MPI job: nearly invisible to the NAS selection (only cold
	// zero-fill faults put anything in system mode — no paging signature),
	// but the I/O-wait selection measures a real wait share.
	if w.MPI.NASSysUserFXU > 0.5 {
		t.Errorf("MPI NAS sys/user = %.2f, want well under 1 (no paging signature)", w.MPI.NASSysUserFXU)
	}
	if w.MPI.NASSysUserFXU >= w.Paging.NASSysUserFXU/10 {
		t.Errorf("MPI (%.2f) should be far below paging (%.2f) on the NAS axis",
			w.MPI.NASSysUserFXU, w.Paging.NASSysUserFXU)
	}
	if w.MPI.WaitFraction < 0.05 || w.MPI.WaitFraction > 0.9 {
		t.Errorf("MPI wait fraction = %.2f, want a visible straggler share", w.MPI.WaitFraction)
	}
	if w.MPI.PageIns != 0 {
		t.Errorf("MPI scenario paged (%d page-ins)?", w.MPI.PageIns)
	}
	s := w.Render()
	if !strings.Contains(s, "What-if") || !strings.Contains(s, "io-wait frac") {
		t.Fatalf("render broken:\n%s", s)
	}
}

func TestIOWaitWhatIfDeterministic(t *testing.T) {
	a := MeasureIOWaitWhatIf(5)
	b := MeasureIOWaitWhatIf(5)
	if a != b {
		t.Fatalf("what-if not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestNPBSuite(t *testing.T) {
	s := MeasureNPBSuite(1, 200_000)
	if len(s.Rows) != 6 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	byName := map[string]NPBRow{}
	for _, r := range s.Rows {
		byName[r.Name] = r
	}
	// Orderings the benchmark literature pins: BT fastest of the solvers,
	// CG slowest of everything, FT and CG the memory-hostile extremes.
	if !(byName["bt"].MflopsPerCPU > byName["sp"].MflopsPerCPU &&
		byName["sp"].MflopsPerCPU > byName["lu"].MflopsPerCPU) {
		t.Errorf("solver ordering broken: bt %.1f sp %.1f lu %.1f",
			byName["bt"].MflopsPerCPU, byName["sp"].MflopsPerCPU, byName["lu"].MflopsPerCPU)
	}
	for _, n := range []string{"bt", "sp", "lu", "mg", "ft"} {
		if byName["cg"].MflopsPerCPU >= byName[n].MflopsPerCPU {
			t.Errorf("cg (%.1f) should be slowest, but beats %s (%.1f)",
				byName["cg"].MflopsPerCPU, n, byName[n].MflopsPerCPU)
		}
	}
	if byName["ft"].TLBMissRatio < 2*byName["bt"].TLBMissRatio {
		t.Errorf("ft TLB ratio %.5f not elevated vs bt %.5f",
			byName["ft"].TLBMissRatio, byName["bt"].TLBMissRatio)
	}
	if byName["cg"].CacheMissRatio < 0.05 {
		t.Errorf("cg cache ratio = %.4f, want gather-dominated", byName["cg"].CacheMissRatio)
	}
	if !strings.Contains(s.Render(), "NPB suite") {
		t.Fatal("render broken")
	}
}

func TestNPBSuiteDeterministic(t *testing.T) {
	a := MeasureNPBSuite(2, 100_000)
	b := MeasureNPBSuite(2, 100_000)
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestFigure4ForOtherNodeCounts(t *testing.T) {
	r := campaign(t)
	// "Similar trends occur for other processor counts": the 8- and
	// 32-node histories must also be flat and dispersed.
	for _, n := range []int{8, 32} {
		f := ComputeFigure4For(r, n)
		if len(f.JobMflops) < 10 {
			t.Fatalf("only %d %d-node jobs", len(f.JobMflops), n)
		}
		if f.Mean <= 0 {
			t.Fatalf("%d-node mean = %v", n, f.Mean)
		}
		if math.Abs(f.TrendPerJob)*float64(len(f.JobMflops)) > f.Mean {
			t.Errorf("%d-node history trends (%.3f/job)", n, f.TrendPerJob)
		}
		// Whole-job rate scales roughly with node count vs the 16-node mean.
		f16 := ComputeFigure4For(r, 16)
		ratio := f.Mean / f16.Mean * 16 / float64(n)
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%d-node per-node scaling off: %.2f", n, ratio)
		}
	}
	// The generic ComputeFigure4 is the 16-node instance.
	a, b := ComputeFigure4(r), ComputeFigure4For(r, 16)
	if a.Mean != b.Mean || len(a.JobMflops) != len(b.JobMflops) {
		t.Fatal("ComputeFigure4 != ComputeFigure4For(16)")
	}
}

func TestUserReport(t *testing.T) {
	r := campaign(t)
	rep := ComputeUserReport(r)
	if len(rep.Rows) == 0 {
		t.Fatal("no users")
	}
	totalJobs := 0
	for i, row := range rep.Rows {
		totalJobs += row.Jobs
		if row.Jobs <= 0 || row.NodeSeconds <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if i > 0 && row.NodeSeconds > rep.Rows[i-1].NodeSeconds {
			t.Fatal("rows not sorted by node-seconds")
		}
	}
	if totalJobs != len(r.Records) {
		t.Fatalf("user jobs %d != records %d", totalJobs, len(r.Records))
	}
	s := rep.Render(5)
	if !strings.Contains(s, "node-seconds") || !strings.Contains(s, "more users") {
		t.Fatalf("render broken:\n%s", s)
	}
	if strings.Count(s, "\n") > 9 {
		t.Fatalf("top-5 render too long:\n%s", s)
	}
}
