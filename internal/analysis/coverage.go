package analysis

import (
	"repro/internal/workload"
)

// RenderCoverage formats the campaign's collection-coverage report — which
// samples the fault layer lost to crashes, cron misses and daemon
// restarts, and how much of the record the reductions above actually
// stand on. A campaign run without fault injection has a complete record
// and renders nothing.
func RenderCoverage(res workload.Result) string {
	if res.Coverage == nil {
		return ""
	}
	return res.Coverage.Render()
}
