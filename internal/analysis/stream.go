package analysis

import "repro/internal/workload"

// Stream consumes a campaign's reduction stream (it implements
// workload.Reducer) and computes the system performance history online:
// each Day is reduced to its Figure 1 series points on arrival and the
// counter delta is dropped, so a nine-month campaign can be analysed
// without ever holding the full Result — the shape the production
// monitoring pipelines this repo grows toward (per-job HPM collection
// feeding a rolling aggregation) require.
//
//	st := analysis.NewStream(cfg.Nodes)
//	workload.NewCampaign(cfg, mix).RunInto(st)
//	fmt.Print(st.Figure1().Render())
type Stream struct {
	nodes int

	daily []float64 // Gflops per day
	util  []float64 // utilisation per day

	final    workload.Final
	finished bool
}

// NewStream returns a streaming collector for a campaign on the given
// cluster size.
func NewStream(nodes int) *Stream {
	return &Stream{nodes: nodes}
}

// ReduceDay folds one day into the running series.
func (s *Stream) ReduceDay(d workload.Day) {
	s.daily = append(s.daily, d.Gflops())
	s.util = append(s.util, d.Utilization(s.nodes))
}

// Finish records the end-of-campaign aggregates.
func (s *Stream) Finish(f workload.Final) {
	s.final = f
	s.finished = true
}

// Days reports how many days have streamed in.
func (s *Stream) Days() int { return len(s.daily) }

// Final returns the end-of-campaign aggregates; valid once the campaign
// has called Finish.
func (s *Stream) Final() workload.Final {
	if !s.finished {
		panic("analysis: Stream.Final before the campaign finished")
	}
	return s.final
}

// Figure1 assembles the Figure 1 data from the streamed series. It may be
// called mid-campaign for a partial view or after Finish for the full one.
func (s *Stream) Figure1() Figure1Data {
	return figure1FromSeries(
		append([]float64(nil), s.daily...),
		append([]float64(nil), s.util...))
}
