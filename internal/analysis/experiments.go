package analysis

import (
	"fmt"
	"strings"

	"repro/internal/hpm"
	"repro/internal/hps"
	"repro/internal/kernels"
	"repro/internal/mpi"
	"repro/internal/node"
	"repro/internal/power2"
	"repro/internal/profile"
	"repro/internal/units"
)

// MeasureSequentialRow micro-simulates the paper's sequential-access
// thought experiment: a single large array swept with no reuse. The
// expected ratios are 1 cache miss per 32 real*8 elements (~3%) and 1 TLB
// miss per 512 (~0.2%); the Mflops cell is blank in the paper.
func MeasureSequentialRow(seed uint64, instrs uint64) Table4Row {
	k, ok := kernels.ByName("sequential")
	if !ok {
		panic("analysis: sequential kernel missing")
	}
	m := profile.DefaultStore.Measure(k, power2.Config{Seed: seed}, instrs)
	r := hpm.UserRates(m.Delta, m.Seconds)
	return Table4Row{
		CacheMissRatio: r.CacheMissRatio(),
		TLBMissRatio:   r.TLBMissRatio(),
	}
}

// BT49Config tunes the 49-CPU NPB BT run.
type BT49Config struct {
	Ranks          int    // 49 in the paper
	Steps          int    // solver iterations
	InstrsPerStep  uint64 // compute burst per iteration
	HaloBytes      uint64 // boundary exchange per neighbour per step
	NormEverySteps int    // allreduce cadence (residual norms)
	Seed           uint64
}

// DefaultBT49 matches the paper's 49-CPU run at a microsim-friendly scale:
// the compute/communication ratio is what sets the measured Mflops/CPU.
func DefaultBT49() BT49Config {
	return BT49Config{
		Ranks:          49,
		Steps:          20,
		InstrsPerStep:  50_000,
		HaloBytes:      8 << 10,
		NormEverySteps: 4,
		Seed:           1,
	}
}

// MeasureBT49Row runs the BT kernel as a real 49-rank message-passing job
// on the simulated switch — every rank executes its instruction stream
// through its node's CPU model, exchanges halos around a ring, and joins
// periodic residual allreduces. The returned row is derived from the
// counters exactly as RS2HPM derived the paper's: counter deltas over the
// job's wall time.
func MeasureBT49Row(cfg BT49Config) Table4Row {
	k, ok := kernels.ByName("bt")
	if !ok {
		panic("analysis: bt kernel missing")
	}
	net := hps.New(hps.SP2())
	nodes := make([]*node.Node, cfg.Ranks)
	for i := range nodes {
		nodes[i] = node.New(node.Config{ID: i})
	}
	world := mpi.NewWorld(net, nodes)

	world.Run(func(r *mpi.Rank) {
		stream := k.New(cfg.Seed + uint64(r.ID()))
		right := (r.ID() + 1) % cfg.Ranks
		left := (r.ID() + cfg.Ranks - 1) % cfg.Ranks
		for step := 0; step < cfg.Steps; step++ {
			// Mild load imbalance: boundary blocks are bigger.
			burst := cfg.InstrsPerStep
			if r.ID()%7 == 0 {
				burst += cfg.InstrsPerStep / 10
			}
			r.ComputeStream(stream, burst)
			if cfg.Ranks > 1 {
				r.SendRecv(right, cfg.HaloBytes, left)
			}
			if cfg.NormEverySteps > 0 && (step+1)%cfg.NormEverySteps == 0 {
				r.Allreduce(256)
			}
		}
	})

	// Job wall time: the slowest rank.
	wall := 0.0
	for _, r := range world.Ranks() {
		if r.Now() > wall {
			wall = r.Now()
		}
	}
	var total hpm.Delta
	for _, nd := range nodes {
		total.Add(hpm.Sub64(hpm.Counts64{}, nd.Counters()))
	}
	r := hpm.UserRates(total, wall*float64(cfg.Ranks))
	return Table4Row{
		CacheMissRatio: r.CacheMissRatio(),
		TLBMissRatio:   r.TLBMissRatio(),
		MflopsPerCPU:   r.MflopsAll,
	}
}

// IOWaitRow is one scenario of the what-if experiment.
type IOWaitRow struct {
	Scenario string
	// Under the NAS selection the only paging clue is the system/user FXU
	// inference of Figure 5; I/O wait itself is invisible.
	NASSysUserFXU float64
	// Under the I/O-wait selection the wait is measured directly.
	WaitFraction    float64 // io_wait cycles / wall cycles
	PageIns         uint64
	SwitchTransfers uint64
}

// IOWaitWhatIf is the experiment behind the paper's closing recommendation:
// "other sites ... might consider selecting counter options which could
// also report I/O wait time in addition to CPU performance". It runs the
// two pathologies the paper could only infer — paging and message-wait —
// once under the NAS selection and once under the I/O-wait selection.
type IOWaitWhatIf struct {
	Paging IOWaitRow
	MPI    IOWaitRow
}

// MeasureIOWaitWhatIf runs both scenarios under both selections.
func MeasureIOWaitWhatIf(seed uint64) IOWaitWhatIf {
	return IOWaitWhatIf{
		Paging: measurePagingWhatIf(seed),
		MPI:    measureMPIWhatIf(seed),
	}
}

// measurePagingWhatIf runs the oversubscribed kernel on a starved node.
func measurePagingWhatIf(seed uint64) IOWaitRow {
	k, ok := kernels.ByName("paging")
	if !ok {
		panic("analysis: paging kernel missing")
	}
	run := func(selection string) (hpm.Delta, uint64) {
		cpu := power2.New(power2.Config{Seed: seed, MemoryBytes: 32 << 20})
		if err := cpu.Monitor().Arm(selection); err != nil {
			panic(err)
		}
		cpu.RunLimited(k.New(seed), 700_000)
		return hpm.Sub(hpm.Snapshot{}, cpu.Monitor().Snapshot()), cpu.Cycle()
	}

	nasDelta, _ := run("nas")
	ioDelta, cycles := run("iowait")

	row := IOWaitRow{Scenario: "oversubscribed node (paging)"}
	row.NASSysUserFXU = hpm.SystemUserFXURatio(nasDelta)
	// Under the iowait selection, slot EvICacheReload carries io_wait
	// cycles, EvDMARead carries page-ins, EvDMAWrite switch payload.
	wait := ioDelta.Total(hpm.EvICacheReload)
	row.WaitFraction = float64(wait) / float64(cycles)
	row.PageIns = ioDelta.Total(hpm.EvDMARead)
	row.SwitchTransfers = ioDelta.Total(hpm.EvDMAWrite)
	return row
}

// measureMPIWhatIf runs a small imbalanced message-passing job: one
// straggler rank makes the others wait, which the NAS selection cannot
// see at all.
func measureMPIWhatIf(seed uint64) IOWaitRow {
	const ranks = 4
	run := func(selection string) ([]*node.Node, float64) {
		net := hps.New(hps.SP2())
		nodes := make([]*node.Node, ranks)
		for i := range nodes {
			nodes[i] = node.New(node.Config{ID: i})
			if err := nodes[i].CPU().Monitor().Arm(selection); err != nil {
				panic(err)
			}
			nodes[i].ResetMonitor()
		}
		world := mpi.NewWorld(net, nodes)
		k, _ := kernels.ByName("bt")
		world.Run(func(r *mpi.Rank) {
			s := k.New(seed + uint64(r.ID()))
			right := (r.ID() + 1) % ranks
			left := (r.ID() + ranks - 1) % ranks
			for step := 0; step < 10; step++ {
				burst := uint64(30_000)
				if r.ID() == 0 {
					burst *= 2 // the straggler
				}
				r.ComputeStream(s, burst)
				r.SendRecv(right, 8<<10, left)
				r.Barrier()
			}
		})
		wall := 0.0
		for _, rk := range world.Ranks() {
			if rk.Now() > wall {
				wall = rk.Now()
			}
		}
		return nodes, wall
	}

	nasNodes, _ := run("nas")
	var nasTotal hpm.Delta
	for _, nd := range nasNodes {
		nasTotal.Add(hpm.Sub64(hpm.Counts64{}, nd.Counters()))
	}

	ioNodes, wall := run("iowait")
	var ioTotal hpm.Delta
	for _, nd := range ioNodes {
		ioTotal.Add(hpm.Sub64(hpm.Counts64{}, nd.Counters()))
	}

	row := IOWaitRow{Scenario: "imbalanced 4-rank MPI job"}
	row.NASSysUserFXU = hpm.SystemUserFXURatio(nasTotal)
	wait := ioTotal.Total(hpm.EvICacheReload)
	row.WaitFraction = float64(wait) / (wall * units.ClockHz * ranks)
	row.PageIns = ioTotal.Total(hpm.EvDMARead)
	row.SwitchTransfers = ioTotal.Total(hpm.EvDMAWrite)
	return row
}

// Render formats the what-if table.
func (w IOWaitWhatIf) Render() string {
	var b strings.Builder
	b.WriteString("What-if: the I/O-wait counter selection the paper recommends\n")
	b.WriteString("(same workloads, monitor re-armed; NAS selection sees no wait at all)\n")
	fmt.Fprintf(&b, "%-32s %18s %14s %10s %12s\n",
		"scenario", "NAS: sys/user FXU", "io-wait frac", "page-ins", "switch-64B")
	for _, r := range []IOWaitRow{w.Paging, w.MPI} {
		fmt.Fprintf(&b, "%-32s %18.2f %13.1f%% %10d %12d\n",
			r.Scenario, r.NASSysUserFXU, 100*r.WaitFraction, r.PageIns, r.SwitchTransfers)
	}
	b.WriteString("the paging node's wait is inferable from sys/user FXU (Figure 5); the MPI\n")
	b.WriteString("job's wait is invisible to the NAS selection and measured directly here.\n")
	return b.String()
}

// NPBRow is one benchmark's measured signature.
type NPBRow struct {
	Name           string
	MflopsPerCPU   float64 // crunch-level, single CPU
	FMAFraction    float64
	FlopsPerMemRef float64
	CacheMissRatio float64
	TLBMissRatio   float64
}

// NPBSuite extends the paper's single BT reference (Table 4) to the full
// NAS Parallel Benchmark character set the NAS-96-010 report covers. The
// rows are single-CPU crunch signatures from the CPU model.
type NPBSuite struct {
	Rows []NPBRow
}

// MeasureNPBSuite runs every NPB-class kernel through the CPU model,
// consulting the profile store (cmd/experiments runs the suite after the
// campaign has already measured bt, so warm entries are free).
func MeasureNPBSuite(seed uint64, instrs uint64) NPBSuite {
	var s NPBSuite
	for _, name := range []string{"bt", "sp", "lu", "mg", "ft", "cg"} {
		k, ok := kernels.ByName(name)
		if !ok {
			panic("analysis: missing NPB kernel " + name)
		}
		m := profile.DefaultStore.Measure(k, power2.Config{Seed: seed}, instrs)
		r := hpm.UserRates(m.Delta, m.Seconds)
		s.Rows = append(s.Rows, NPBRow{
			Name:           name,
			MflopsPerCPU:   r.MflopsAll,
			FMAFraction:    r.FMAFraction(),
			FlopsPerMemRef: r.FlopsPerMemRef(),
			CacheMissRatio: r.CacheMissRatio(),
			TLBMissRatio:   r.TLBMissRatio(),
		})
	}
	return s
}

// Render formats the suite table.
func (s NPBSuite) Render() string {
	var b strings.Builder
	b.WriteString("NPB suite on the simulated POWER2 (single-CPU crunch signatures;\n")
	b.WriteString("extends Table 4's BT reference across the NAS-96-010 benchmark set)\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %14s %12s %10s\n",
		"bench", "Mflops", "fma-frac", "flops/memref", "cache-miss", "tlb-miss")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-6s %10.1f %10.2f %14.2f %11.2f%% %9.3f%%\n",
			r.Name, r.MflopsPerCPU, r.FMAFraction, r.FlopsPerMemRef,
			100*r.CacheMissRatio, 100*r.TLBMissRatio)
	}
	b.WriteString("the better-performing codes do >=2/3 of their flops in fma (paper: >=80%\n")
	b.WriteString("for the best codes); CG's gathers and FT's transposes show the cache- and\n")
	b.WriteString("TLB-hostile extremes the paper's sequential-access thought experiment bounds.\n")
	return b.String()
}
