// Package analysis reduces a campaign result to the paper's tables and
// figures: Table 2/3's good-day rate statistics, Table 4's memory-hierarchy
// comparison, and Figures 1-5. Every Compute function returns plain data
// (tested against the paper's bands); every Render function formats it the
// way the paper prints it.
package analysis

import (
	"fmt"
	"strings"

	"repro/internal/hpm"
	"repro/internal/stats"
	"repro/internal/workload"
)

// GoodDayThresholdGflops is the paper's filter: "days with performance
// exceeding 2.0 Gflops" (30 of 270 days).
const GoodDayThresholdGflops = 2.0

// GoodDays returns the days above the threshold.
func GoodDays(res workload.Result) []workload.Day {
	var out []workload.Day
	for _, i := range goodDayIndices(res) {
		out = append(out, res.Days[i])
	}
	return out
}

// goodDayIndices is the index form of GoodDays. The reductions below work
// on indices rather than Day values so a faulted campaign's coverage
// ledger (keyed by day index) stays attached to each day.
func goodDayIndices(res workload.Result) []int {
	var out []int
	for i := range res.Days {
		if res.DayGflops(i) > GoodDayThresholdGflops {
			out = append(out, i)
		}
	}
	return out
}

// RenderTable1 prints the NAS counter selection (paper Table 1).
func RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: NAS SP2 RS2HPM Counters\n")
	fmt.Fprintf(&b, "%-20s %-9s %s\n", "Counter Label", "Counter", "Description")
	for _, row := range hpm.Table1() {
		fmt.Fprintf(&b, "%-20s %s[%d]%s %s\n",
			row.Label, row.Group, row.Index,
			strings.Repeat(" ", 6-len(row.Group)), row.Description)
	}
	return b.String()
}

// Table2 holds the measured major rates (paper Table 2): per-node Mips,
// Mops and Mflops for a representative day plus the good-day sample's
// average and standard deviation.
type Table2 struct {
	GoodDays  int
	TotalDays int
	Day       hpm.Rates // the representative single day
	DayIndex  int
	AvgMips   float64
	StdMips   float64
	AvgMops   float64
	StdMops   float64
	AvgMflops float64
	StdMflops float64
	AvgUtil   float64 // good-day utilisation (paper: 76%)
	AvgGflops float64 // good-day system rate (paper: ~2.5)
}

// ComputeTable2 reduces the campaign to Table 2. The representative day is
// the good day whose Mflops is closest to the sample median (the paper
// shows "Day 45.0").
func ComputeTable2(res workload.Result) Table2 {
	good := goodDayIndices(res)
	t := Table2{GoodDays: len(good), TotalDays: len(res.Days)}
	if len(good) == 0 {
		return t
	}
	nodes := res.Config.Nodes
	var mips, mops, mf, util, gfl []float64
	for _, idx := range good {
		r := res.DayPerNodeRates(idx)
		mips = append(mips, r.Mips)
		mops = append(mops, r.Mops)
		mf = append(mf, r.MflopsAll)
		util = append(util, res.Days[idx].Utilization(nodes))
		gfl = append(gfl, res.DayGflops(idx))
	}
	t.AvgMips, t.StdMips = stats.Mean(mips), stats.StdDev(mips)
	t.AvgMops, t.StdMops = stats.Mean(mops), stats.StdDev(mops)
	t.AvgMflops, t.StdMflops = stats.Mean(mf), stats.StdDev(mf)
	t.AvgUtil = stats.Mean(util)
	t.AvgGflops = stats.Mean(gfl)

	median := stats.Median(mf)
	bestIdx := 0
	for i, v := range mf {
		if abs(v-median) < abs(mf[bestIdx]-median) {
			bestIdx = i
		}
	}
	t.Day = res.DayPerNodeRates(good[bestIdx])
	t.DayIndex = res.Days[good[bestIdx]].Index
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render formats Table 2 as the paper prints it.
func (t Table2) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Measured Major Rates for NAS Workload\n")
	fmt.Fprintf(&b, "(%d of %d days exceeded %.1f Gflops; good-day avg %.2f Gflops at %.0f%% utilization)\n",
		t.GoodDays, t.TotalDays, GoodDayThresholdGflops, t.AvgGflops, 100*t.AvgUtil)
	fmt.Fprintf(&b, "%-8s %10s %10s %8s\n", "Rates", fmt.Sprintf("Day %d", t.DayIndex), "Avg Rate", "Std")
	fmt.Fprintf(&b, "%-8s %10.1f %10.1f %8.1f\n", "Mips", t.Day.Mips, t.AvgMips, t.StdMips)
	fmt.Fprintf(&b, "%-8s %10.1f %10.1f %8.1f\n", "Mops", t.Day.Mops, t.AvgMops, t.StdMops)
	fmt.Fprintf(&b, "%-8s %10.1f %10.1f %8.1f\n", "Mflops", t.Day.MflopsAll, t.AvgMflops, t.StdMflops)
	return b.String()
}

// Table3Row is one line of the full breakdown.
type Table3Row struct {
	Label string
	Day   float64
	Avg   float64
	Std   float64
}

// Table3 is the full rate breakdown (paper Table 3).
type Table3 struct {
	DayIndex int
	Sections []struct {
		Name string
		Rows []Table3Row
	}
	// Derived statistics quoted in the text.
	FMAFraction  float64 // ~0.54
	FPUAsymmetry float64 // ~1.7
	FlopsPerMem  float64 // ~0.53-0.63
	CacheRatio   float64 // ~1.0%
	TLBRatio     float64 // ~0.1%
	BranchFrac   float64 // ~11% interpretation
	DelayPerMem  float64 // ~0.12 cycles
}

// ComputeTable3 reduces the good-day sample to the full breakdown.
func ComputeTable3(res workload.Result) Table3 {
	good := goodDayIndices(res)
	var t Table3
	if len(good) == 0 {
		return t
	}
	t2 := ComputeTable2(res)
	t.DayIndex = t2.DayIndex
	day := t2.Day

	collect := func(f func(hpm.Rates) float64) (avg, std float64) {
		var xs []float64
		for _, idx := range good {
			xs = append(xs, f(res.DayPerNodeRates(idx)))
		}
		return stats.Mean(xs), stats.StdDev(xs)
	}
	section := func(name string, rows ...Table3Row) {
		t.Sections = append(t.Sections, struct {
			Name string
			Rows []Table3Row
		}{name, rows})
	}
	row := func(label string, f func(hpm.Rates) float64) Table3Row {
		avg, std := collect(f)
		return Table3Row{Label: label, Day: f(day), Avg: avg, Std: std}
	}

	section("OPS",
		row("Mflops-All", func(r hpm.Rates) float64 { return r.MflopsAll }),
		row("Mflops-add", func(r hpm.Rates) float64 { return r.MflopsAdd }),
		row("Mflops-div", func(r hpm.Rates) float64 { return r.MflopsDiv }),
		row("Mflops-mult", func(r hpm.Rates) float64 { return r.MflopsMul }),
		row("Mflops-fma", func(r hpm.Rates) float64 { return r.MflopsFMA }),
	)
	section("INST",
		row("Mips-Floating Point (Total)", func(r hpm.Rates) float64 { return r.MipsFPU }),
		row("Mips-Floating Point (Unit 0)", func(r hpm.Rates) float64 { return r.MipsFPU0 }),
		row("Mips-Floating Point (Unit 1)", func(r hpm.Rates) float64 { return r.MipsFPU1 }),
		row("Mips-Fixed Point Unit (Total)", func(r hpm.Rates) float64 { return r.MipsFXU }),
		row("Mips-Fixed Point (Unit 1)", func(r hpm.Rates) float64 { return r.MipsFXU1 }),
		row("Mips-Fixed Point (Unit 0)", func(r hpm.Rates) float64 { return r.MipsFXU0 }),
		row("Mips-Inst Cache Unit", func(r hpm.Rates) float64 { return r.MipsICU }),
	)
	section("CACHE",
		row("Data Cache Misses-Million/S", func(r hpm.Rates) float64 { return r.DCacheMissM }),
		row("TLB-Million/S", func(r hpm.Rates) float64 { return r.TLBMissM }),
		row("Instruction Cache Misses-Million/S", func(r hpm.Rates) float64 { return r.ICacheMissM }),
	)
	section("I/O",
		row("DMA reads-MTransfer/S", func(r hpm.Rates) float64 { return r.DMAReadM }),
		row("DMA writes-MTransfer/S", func(r hpm.Rates) float64 { return r.DMAWriteM }),
	)

	// Text statistics from the sample averages.
	avgRates := pooledRates(res, good)
	t.FMAFraction = avgRates.FMAFraction()
	t.FPUAsymmetry = avgRates.FPUAsymmetry()
	t.FlopsPerMem = avgRates.FlopsPerMemRef()
	t.CacheRatio = avgRates.CacheMissRatio()
	t.TLBRatio = avgRates.TLBMissRatio()
	t.BranchFrac = avgRates.BranchFraction()
	t.DelayPerMem = avgRates.DelayPerMemRef(8, 45)
	return t
}

// pooledRates sums the sample's deltas so derived ratios use pooled
// counts rather than averages of ratios. The divisor is the node-seconds
// the collection actually covered over those days — the full wall clock
// for a clean campaign, the ledger's covered time for a faulted one.
func pooledRates(res workload.Result, idxs []int) hpm.Rates {
	var total hpm.Delta
	covered := 0.0
	for _, i := range idxs {
		total.Add(res.Days[i].Delta)
		covered += res.DayCoveredNodeSeconds(i)
	}
	if covered <= 0 {
		return hpm.Rates{}
	}
	return hpm.UserRates(total, covered)
}

// Render formats Table 3 plus the derived text statistics.
func (t Table3) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Measured Major Rates for NAS Workload (full breakdown)\n")
	fmt.Fprintf(&b, "%-36s %9s %9s %8s\n", "Rates", fmt.Sprintf("Day %d", t.DayIndex), "Avg", "Std")
	for _, sec := range t.Sections {
		fmt.Fprintf(&b, "%s\n", sec.Name)
		for _, r := range sec.Rows {
			fmt.Fprintf(&b, "  %-34s %9.3f %9.3f %8.3f\n", r.Label, r.Day, r.Avg, r.Std)
		}
	}
	fmt.Fprintf(&b, "derived: fma share of flops %.0f%% [54%%], FPU0/FPU1 %.2f [1.7], "+
		"flops/memref %.2f [0.53-0.63],\n         cache-miss ratio %.2f%% [1.0%%], TLB ratio %.3f%% [0.1%%], "+
		"delay/memref %.2f cyc [0.12]\n",
		100*t.FMAFraction, t.FPUAsymmetry, t.FlopsPerMem,
		100*t.CacheRatio, 100*t.TLBRatio, t.DelayPerMem)
	return b.String()
}

// Table4 is the hierarchical memory performance comparison (paper Table 4).
type Table4 struct {
	// Rows: NAS workload, sequential access, NPB BT on 49 CPUs.
	Workload   Table4Row
	Sequential Table4Row
	BT49       Table4Row
}

// Table4Row holds one column of the paper's table (it is printed
// transposed, like the original).
type Table4Row struct {
	CacheMissRatio float64
	TLBMissRatio   float64
	MflopsPerCPU   float64 // zero when the paper leaves the cell blank
}

// ComputeTable4 combines the campaign's good-day sample with direct kernel
// measurements. seqRates and btRates come from the harness: a microsim of
// the sequential kernel and a real 49-rank MPI run of the BT kernel.
func ComputeTable4(res workload.Result, seq, bt49 Table4Row) Table4 {
	good := goodDayIndices(res)
	var w Table4Row
	if len(good) > 0 {
		r := pooledRates(res, good)
		w = Table4Row{
			CacheMissRatio: r.CacheMissRatio(),
			TLBMissRatio:   r.TLBMissRatio(),
			MflopsPerCPU:   r.MflopsAll,
		}
	}
	return Table4{Workload: w, Sequential: seq, BT49: bt49}
}

// Render formats Table 4.
func (t Table4) Render() string {
	var b strings.Builder
	b.WriteString("Table 4: Hierarchical Memory Performance\n")
	fmt.Fprintf(&b, "%-18s %14s %18s %14s\n", "Rate", "NAS Workload", "Sequential Access", "NPB BT 49 CPUs")
	fmt.Fprintf(&b, "%-18s %13.1f%% %17.1f%% %13.2f%%\n", "Cache Miss Ratio",
		100*t.Workload.CacheMissRatio, 100*t.Sequential.CacheMissRatio, 100*t.BT49.CacheMissRatio)
	fmt.Fprintf(&b, "%-18s %13.2f%% %17.2f%% %13.2f%%\n", "TLB Miss Ratio",
		100*t.Workload.TLBMissRatio, 100*t.Sequential.TLBMissRatio, 100*t.BT49.TLBMissRatio)
	fmt.Fprintf(&b, "%-18s %14.1f %18s %14.1f\n", "Mflops/CPU",
		t.Workload.MflopsPerCPU, "-", t.BT49.MflopsPerCPU)
	return b.String()
}
