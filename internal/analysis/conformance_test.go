package analysis

// The conformance suite: every paper-band assertion scattered through the
// package's tests, consolidated into one table driven by
// testdata/paper_bands.json. Each band records the value the paper
// reports, the tolerance this reproduction accepts, and the table or
// figure it comes from — so a failure reads as "the reproduction drifted
// from Table 3", not as an anonymous number mismatch.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/workload"
)

type paperBand struct {
	Metric string  `json:"metric"`
	Paper  float64 `json:"paper"`
	Note   string  `json:"note"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Ref    string  `json:"ref"`
}

type paperBands struct {
	Source string      `json:"source"`
	Bands  []paperBand `json:"bands"`
}

func loadPaperBands(t *testing.T) paperBands {
	t.Helper()
	raw, err := os.ReadFile("testdata/paper_bands.json")
	if err != nil {
		t.Fatalf("paper bands: %v", err)
	}
	var pb paperBands
	if err := json.Unmarshal(raw, &pb); err != nil {
		t.Fatalf("paper bands: %v", err)
	}
	if pb.Source == "" || len(pb.Bands) == 0 {
		t.Fatal("paper bands file is empty")
	}
	return pb
}

// table3Row digs a labelled row's campaign average out of Table 3.
func table3Row(t *testing.T, t3 Table3, label string) float64 {
	t.Helper()
	for _, sec := range t3.Sections {
		for _, row := range sec.Rows {
			if row.Label == label {
				return row.Avg
			}
		}
	}
	t.Fatalf("Table 3 has no row %q", label)
	return 0
}

// conformanceMetrics computes every banded metric from one campaign. The
// map keys must cover exactly the metrics named in paper_bands.json; the
// test fails on either a band with no extractor or an extractor with no
// band, so the JSON file and this table cannot drift apart silently.
func conformanceMetrics(t *testing.T, res workload.Result) map[string]float64 {
	t.Helper()
	t2 := ComputeTable2(res)
	if t2.GoodDays == 0 {
		t.Skip("campaign produced no >2 Gflops days to band against")
	}
	t3 := ComputeTable3(res)
	f2 := ComputeFigure2(res)
	f3 := ComputeFigure3(res)
	f4 := ComputeFigure4(res)
	f5 := ComputeFigure5(res)

	collapse := 0.0
	if f3.MeanUpTo64 > 0 {
		collapse = f3.MeanBeyond64 / f3.MeanUpTo64
	}
	fxu0 := table3Row(t, t3, "Mips-Fixed Point (Unit 0)")
	fxu1 := table3Row(t, t3, "Mips-Fixed Point (Unit 1)")
	asym := 0.0
	if fxu0 > 0 {
		asym = fxu1 / fxu0
	}

	return map[string]float64{
		"avg_mflops_per_node":           t2.AvgMflops,
		"avg_mips_per_node":             t2.AvgMips,
		"good_day_utilization":          t2.AvgUtil,
		"fma_fraction":                  t3.FMAFraction,
		"fpu_asymmetry":                 t3.FPUAsymmetry,
		"flops_per_memref":              t3.FlopsPerMem,
		"cache_miss_ratio":              t3.CacheRatio,
		"tlb_miss_ratio":                t3.TLBRatio,
		"mflops_div":                    table3Row(t, t3, "Mflops-div"),
		"fxu1_over_fxu0_mips":           asym,
		"delay_per_memref_cycles":       t3.DelayPerMem,
		"fig2_peak_nodes":               float64(f2.PeakNodes),
		"fig2_over64_walltime_frac":     f2.Over64Frac,
		"fig3_beyond64_collapse_ratio":  collapse,
		"fig3_peak_mflops_per_node":     f3.PeakMflops,
		"fig4_16node_mean_mflops":       f4.Mean,
		"fig4_16node_std_mflops":        f4.Std,
		"fig5_intervention_correlation": f5.Corr,
	}
}

func TestPaperConformance(t *testing.T) {
	pb := loadPaperBands(t)
	got := conformanceMetrics(t, campaign(t))

	seen := map[string]bool{}
	for _, b := range pb.Bands {
		b := b
		t.Run(b.Metric, func(t *testing.T) {
			v, ok := got[b.Metric]
			if !ok {
				t.Fatalf("band %q (%s) has no extractor in conformanceMetrics", b.Metric, b.Ref)
			}
			if b.Lo > b.Hi {
				t.Fatalf("band %q is inverted: lo %v > hi %v", b.Metric, b.Lo, b.Hi)
			}
			if v < b.Lo || v > b.Hi {
				t.Errorf("%s = %v outside [%v, %v]; paper reports %v (%s: %s)",
					b.Metric, v, b.Lo, b.Hi, b.Paper, b.Ref, b.Note)
			}
		})
		seen[b.Metric] = true
	}
	for m := range got {
		if !seen[m] {
			t.Errorf("metric %q computed but has no band in paper_bands.json", m)
		}
	}
}

// TestPaperConformanceBandsSane checks the bands file itself: every band
// brackets the paper's own value (a band the paper fails is a typo) and
// cites a table or figure.
func TestPaperConformanceBandsSane(t *testing.T) {
	pb := loadPaperBands(t)
	for _, b := range pb.Bands {
		if b.Ref == "" {
			t.Errorf("band %q cites no paper table/figure", b.Metric)
		}
		if b.Paper < b.Lo || b.Paper > b.Hi {
			t.Errorf("band %q does not bracket the paper value %v: [%v, %v]",
				b.Metric, b.Paper, b.Lo, b.Hi)
		}
	}
}

// TestPaperConformanceReport prints the full scorecard under -v: one line
// per band, measured value against the paper's, so a conformance run
// doubles as the reproduction's summary table.
func TestPaperConformanceReport(t *testing.T) {
	pb := loadPaperBands(t)
	res := campaign(t)
	got := conformanceMetrics(t, res)
	if line := RenderScenario(res); line != "" {
		t.Log(line)
	}
	for _, b := range pb.Bands {
		v, ok := got[b.Metric]
		if !ok {
			continue
		}
		status := "ok"
		if v < b.Lo || v > b.Hi {
			status = "OUT OF BAND"
		}
		t.Log(fmt.Sprintf("%-30s %12.4f  paper %8.3f  band [%g, %g]  %-8s %s",
			b.Metric, v, b.Paper, b.Lo, b.Hi, b.Ref, status))
	}
}
