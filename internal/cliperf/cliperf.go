// Package cliperf carries the shared performance plumbing of the
// command-line tools: pprof profile capture (-cpuprofile/-memprofile) and
// the persisted profile-measurement cache (-profile-cache). It exists so
// cmd/spsim and cmd/experiments expose identical knobs without duplicating
// the teardown-ordering details (the CPU profile must stop before the
// process exits, the memory profile wants a GC first, the measurement
// cache is written back after the run so new entries persist).
package cliperf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/profile"
	"repro/internal/trace"
)

// StartCPUProfile begins CPU profiling into path and returns the stop
// function. With an empty path it is a no-op returning a no-op stop.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cliperf: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cliperf: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteMemProfile writes a heap profile to path (after a GC, so the
// profile reflects live objects rather than garbage). Empty path is a
// no-op.
func WriteMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cliperf: mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("cliperf: mem profile: %w", err)
	}
	return nil
}

// LoadProfileCache warms the default measurement store from path (".gz"
// handled transparently; a missing file is a cold start). Empty path is a
// no-op.
func LoadProfileCache(path string) error {
	if path == "" {
		return nil
	}
	return trace.LoadProfileCacheFile(path, profile.DefaultStore)
}

// SaveProfileCache persists the default measurement store to path so the
// next process starts warm. Empty path is a no-op.
func SaveProfileCache(path string) error {
	if path == "" {
		return nil
	}
	return trace.WriteProfileCacheFile(path, profile.DefaultStore)
}
