package core

// The fleet facade: member construction (seeds, replication, spec fleet
// blocks, explicit-override precedence) and a short end-to-end RunFleet.

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/workload"
)

func TestFleetMembersReplicatesBaseCampaign(t *testing.T) {
	s := system(t)
	members, err := s.FleetMembers(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 {
		t.Fatalf("got %d members, want 3", len(members))
	}
	base := s.CampaignConfig()
	for i, m := range members {
		want := base
		want.Seed = workload.ClusterSeed(base.Seed, i)
		if m.Config != want {
			t.Errorf("member %d config:\n got %+v\nwant %+v", i, m.Config, want)
		}
	}
	if members[0].Config.Seed != base.Seed {
		t.Fatalf("cluster 0 seed = %d, want the campaign seed %d (identity)", members[0].Config.Seed, base.Seed)
	}
	one, err := s.FleetMembers(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Config != base {
		t.Fatalf("spec-less fleet of one must be the campaign itself, got %+v", one)
	}
}

func burstyFleetSpec(t *testing.T) *spec.Spec {
	t.Helper()
	sp, err := spec.Preset("bursty")
	if err != nil {
		t.Fatal(err)
	}
	sp.Fleet = &spec.FleetBlock{
		Clusters:  2,
		Overrides: []spec.ClusterOverride{{Cluster: 1, Days: 1, Nodes: 128}},
	}
	return sp
}

func TestFleetMembersFromSpecFleetBlock(t *testing.T) {
	s, err := NewWithSpec(Config{Seed: 4}, burstyFleetSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if s.FleetClusters() != 2 {
		t.Fatalf("FleetClusters = %d, want 2", s.FleetClusters())
	}
	members, err := s.FleetMembers(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 {
		t.Fatalf("got %d members, want 2", len(members))
	}
	if c := members[0].Config; c.Days != 90 || c.Nodes != 144 {
		t.Fatalf("cluster 0 must inherit the campaign block (90 days, 144 nodes): %+v", c)
	}
	if c := members[1].Config; c.Days != 1 || c.Nodes != 128 {
		t.Fatalf("cluster 1 override (1 day, 128 nodes) not applied: %+v", c)
	}
	for i, m := range members {
		if m.Config.Seed != workload.ClusterSeed(4, i) {
			t.Errorf("member %d seed = %d, want ClusterSeed(4, %d)", i, m.Config.Seed, i)
		}
	}
	// An explicit member count redefines the fleet: homogeneous copies.
	four, err := s.FleetMembers(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(four) != 4 {
		t.Fatalf("got %d members, want 4", len(four))
	}
	if c := four[1].Config; c.Days != 90 || c.Nodes != 144 {
		t.Fatalf("explicit cluster count must drop per-cluster overrides: %+v", c)
	}
}

// TestRunFleetWithSpecOverrides drives the whole stack: explicit Days
// override every cluster of the fleet, and the merged reduction streams
// out with summed capacity.
func TestRunFleetWithSpecOverrides(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run in -short mode")
	}
	s, err := NewWithSpec(Config{Seed: 4, Days: 2}, burstyFleetSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	members, err := s.FleetMembers(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		if m.Config.Days != 2 {
			t.Fatalf("explicit -days must override cluster %d, got %d", i, m.Config.Days)
		}
	}
	res, err := s.RunFleet(FleetConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 2 {
		t.Fatalf("merged days = %d, want 2", len(res.Days))
	}
	if res.Config.Nodes != 144+128 {
		t.Fatalf("merged nodes = %d, want the fleet's 272", res.Config.Nodes)
	}
	if res.Config.Scenario != "bursty" {
		t.Fatalf("scenario = %q, want bursty", res.Config.Scenario)
	}
}
