package core

// The fleet-backed facade path: the same System that runs one campaign
// can run a sharded multi-cluster fleet (internal/fleet), with the fleet
// shape coming from the spec's fleet block, an explicit cluster count,
// or both (the explicit count wins and replicates the base campaign).

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/spec"
	"repro/internal/workload"
)

// FleetConfig selects the fleet shape and execution for RunFleet. The
// zero value runs the spec's fleet block (or a fleet of one) in a single
// shard with no checkpointing.
type FleetConfig struct {
	// Clusters, when > 0, overrides the fleet size with that many
	// homogeneous copies of the base campaign (per-cluster spec overrides
	// are dropped — an explicit count redefines the fleet).
	Clusters int
	// Shards is the number of cluster-level workers (see fleet.Options).
	Shards int
	// Checkpoint / CheckpointEachDay / Resume / HaltAfter / RecordTo /
	// ReplayFrom map directly to fleet.Options.
	Checkpoint        string
	CheckpointEachDay bool
	Resume            bool
	HaltAfter         int
	RecordTo          string
	ReplayFrom        string
}

// FleetMembers builds the fleet definition the system would run:
// per-cluster campaign configs with substream-derived seeds and the
// shared mix. clusters > 0 forces that many homogeneous copies of the
// base campaign; 0 defers to the spec's fleet block (a fleet of one
// without a spec, or when the spec has no fleet block).
func (s *System) FleetMembers(clusters int) ([]fleet.Member, error) {
	var cfgs []workload.Config
	switch {
	case clusters > 0 || s.sp == nil || s.sp.Fleet == nil:
		if clusters <= 0 {
			clusters = 1
		}
		base := s.CampaignConfig()
		cfgs = make([]workload.Config, clusters)
		for i := range cfgs {
			cfgs[i] = base
		}
	default:
		var err error
		cfgs, _, err = spec.ResolveFleet(s.sp, s.std)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		for i := range cfgs {
			// Explicit caller overrides apply fleet-wide; inherited values
			// defer to the spec's per-cluster overrides.
			if s.daysSet {
				cfgs[i].Days = s.cfg.Days
			}
			if s.nodesSet {
				cfgs[i].Nodes = s.cfg.Nodes
			}
			cfgs[i].Workers = s.cfg.Workers
		}
	}
	members := make([]fleet.Member, len(cfgs))
	for i := range cfgs {
		cfgs[i].Seed = workload.ClusterSeed(s.cfg.Seed, i)
		members[i] = fleet.Member{Config: cfgs[i], Mix: s.mix}
	}
	return members, nil
}

// RunFleet executes the fleet campaign, streaming the merged reduction
// into the sinks, and returns the merged Result (see fleet.Run).
func (s *System) RunFleet(fc FleetConfig, sinks ...workload.Reducer) (workload.Result, error) {
	members, err := s.FleetMembers(fc.Clusters)
	if err != nil {
		return workload.Result{}, err
	}
	return fleet.Run(members, fleet.Options{
		Shards:            fc.Shards,
		Checkpoint:        fc.Checkpoint,
		CheckpointEachDay: fc.CheckpointEachDay,
		Resume:            fc.Resume,
		HaltAfter:         fc.HaltAfter,
		RecordTo:          fc.RecordTo,
		ReplayFrom:        fc.ReplayFrom,
	}, sinks...)
}

// FleetClusters reports the fleet size the system would run with no
// explicit cluster-count override.
func (s *System) FleetClusters() int {
	if s.sp != nil && s.sp.Fleet != nil {
		return s.sp.Fleet.Clusters
	}
	return 1
}
