package core

// The record/replay facade path: the same System that runs one campaign
// can record its generated workload to a trace, or re-simulate a
// recorded trace bit-identically (internal/replay). Fleet runs get the
// same pair through FleetConfig.RecordTo/ReplayFrom.

import (
	"repro/internal/replay"
	"repro/internal/workload"
)

// RunCampaignRecordTo executes the measurement window live, recording
// the generated workload (day plans and resolved fault schedules) to a
// campaign trace at path. The Result is identical to RunCampaign's; the
// sinks receive the reduction stream as in RunCampaignInto.
func (s *System) RunCampaignRecordTo(path string, sinks ...workload.Reducer) (workload.Result, error) {
	return replay.RunRecorded(path, s.CampaignConfig(), s.mix, sinks...)
}

// RunCampaignReplayFrom re-simulates the campaign trace at path,
// bypassing generation. The trace must have been recorded from this
// system's campaign definition (replay.ErrMismatch otherwise); Workers
// may differ freely, and the Result is bit-identical to the recorded
// run.
func (s *System) RunCampaignReplayFrom(path string, sinks ...workload.Reducer) (workload.Result, error) {
	return replay.RunReplayed(path, s.CampaignConfig(), s.mix, sinks...)
}
