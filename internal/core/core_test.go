package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/hpm"
	"repro/internal/rs2hpm"
	"repro/internal/spec"
	"repro/internal/workload"
)

var (
	sysOnce sync.Once
	sys     *System
)

func system(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() { sys = New(Config{Days: 20, Seed: 3}) })
	return sys
}

func TestDefaultsFillIn(t *testing.T) {
	s := system(t)
	wc := s.CampaignConfig()
	if wc.Days != 20 {
		t.Fatalf("days = %d", wc.Days)
	}
	if wc.Nodes != 144 {
		t.Fatalf("nodes = %d, want the SP2's 144", wc.Nodes)
	}
}

// TestNewWithSpec drives the declarative path through the facade: a
// committed preset, config overrides on top of the spec's campaign
// block, and a short end-to-end run.
func TestNewWithSpec(t *testing.T) {
	sp, err := spec.Preset("bursty")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithSpec(Config{Days: 2, Seed: 3}, sp)
	if err != nil {
		t.Fatal(err)
	}
	wc := s.CampaignConfig()
	if wc.Days != 2 {
		t.Fatalf("days = %d, want the override 2", wc.Days)
	}
	if wc.Nodes != 144 {
		t.Fatalf("nodes = %d, want the spec's 144", wc.Nodes)
	}
	if wc.Scenario != "bursty" {
		t.Fatalf("scenario = %q, want bursty", wc.Scenario)
	}
	if wc.Faults == nil {
		t.Fatal("bursty preset declares a faults block; it must survive resolution")
	}
	if testing.Short() {
		return
	}
	res := s.RunCampaign()
	if len(res.Days) != 2 {
		t.Fatalf("days = %d", len(res.Days))
	}
	if res.Coverage == nil {
		t.Fatal("faulted campaign must report coverage")
	}
}

func TestProfilesOrdered(t *testing.T) {
	p := system(t).Profiles()
	if !(p.CFD.Mflops < p.BT.Mflops && p.BT.Mflops < p.MatMul.Mflops) {
		t.Fatalf("profile ordering: %v %v %v", p.CFD.Mflops, p.BT.Mflops, p.MatMul.Mflops)
	}
}

func TestMeasureKernel(t *testing.T) {
	r, err := system(t).MeasureKernel("matmul", 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.MflopsAll < 180 {
		t.Fatalf("matmul = %.1f Mflops", r.MflopsAll)
	}
	if _, err := system(t).MeasureKernel("no-such-kernel", 10); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestEndToEndReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	s := system(t)
	res := s.RunCampaign()
	if len(res.Days) != 20 {
		t.Fatalf("days = %d", len(res.Days))
	}
	rep := s.Report(res)
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %s", want)
		}
	}
}

// TestLiveMonitoringDuringCampaign runs the RS2HPM daemon over the
// campaign's nodes while the campaign executes, sampling over TCP from a
// concurrent collector — the deployment topology of the paper (cron
// sampling a live machine). Counter reads must be race-free and
// monotonically non-decreasing.
func TestLiveMonitoringDuringCampaign(t *testing.T) {
	cfg := workload.DefaultConfig(21)
	cfg.Days = 3
	camp := workload.NewCampaign(cfg, workload.DefaultMix(system(t).Profiles()))

	daemon := rs2hpm.NewDaemon()
	for _, nd := range camp.Nodes()[:8] {
		daemon.AddSource(nd)
	}
	addr, err := daemon.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()

	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		defer close(errs)
		client, err := rs2hpm.Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer client.Close()
		last := map[int]uint64{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			for id := 0; id < 8; id++ {
				c, err := client.Counters(id)
				if err != nil {
					errs <- err
					return
				}
				cyc := c.Get(hpm.User, hpm.EvCycles) + c.Get(hpm.System, hpm.EvCycles)
				if cyc < last[id] {
					errs <- fmt.Errorf("node %d cycles went backwards: %d < %d", id, cyc, last[id])
					return
				}
				last[id] = cyc
			}
		}
	}()

	res := camp.Run()
	close(stop)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 3 {
		t.Fatalf("days = %d", len(res.Days))
	}
}
