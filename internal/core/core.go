// Package core is the library facade: one type that wires together the
// whole reproduction — kernel profile measurement on the POWER2 CPU model,
// the nine-month PBS workload campaign, and the analysis that regenerates
// every table and figure of Bergeron's SC'98 measurement study.
//
// Typical use:
//
//	sys := core.New(core.Config{Seed: 1})
//	res := sys.RunCampaign()
//	fmt.Print(sys.Report(res))
//
// Lower layers remain importable for finer control: power2 (the CPU),
// hpm (the counter architecture), rs2hpm (the daemon/collector), mpi/hps
// (message passing), pbs (the batch system), workload (the campaign) and
// analysis (tables and figures).
package core

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/hpm"
	"repro/internal/kernels"
	"repro/internal/power2"
	"repro/internal/profile"
	"repro/internal/spec"
	"repro/internal/units"
	"repro/internal/workload"
)

// Config selects the campaign scale. Zero values choose the paper's
// parameters (270 days, 144 nodes) with one engine worker per CPU.
type Config struct {
	Days  int
	Nodes int
	Seed  uint64
	// Workers is the parallelism for profile measurement and the campaign
	// engine; zero picks GOMAXPROCS, 1 forces the serial engine. Results
	// are bit-identical for every value.
	Workers int
}

// System is a configured reproduction: measured kernel profiles plus the
// campaign and analysis plumbing.
type System struct {
	cfg Config
	std profile.Standard
	mix workload.Mix
	// base is the spec-resolved campaign configuration when the system was
	// built with NewWithSpec; nil means the paper's DefaultConfig.
	base *workload.Config
	// sp is the source spec when built with NewWithSpec; the fleet path
	// re-resolves it per cluster (fleet blocks carry per-cluster
	// overrides a single Config cannot).
	sp *spec.Spec
	// daysSet/nodesSet record whether the caller's Config carried
	// explicit Days/Nodes — those override every cluster of a fleet,
	// while inherited values defer to per-cluster spec overrides.
	daysSet, nodesSet bool
}

// New measures the standard kernel profiles (a few hundred thousand
// simulated instructions each) and returns a ready System running the
// built-in paper-1996 workload.
func New(cfg Config) *System {
	daysSet, nodesSet := cfg.Days != 0, cfg.Nodes != 0
	if cfg.Days == 0 {
		cfg.Days = 270
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = units.NodeCount
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	std := profile.MeasureStandardWorkers(cfg.Seed, cfg.Workers)
	return &System{cfg: cfg, std: std, mix: workload.DefaultMix(std), daysSet: daysSet, nodesSet: nodesSet}
}

// NewWithSpec measures the standard kernel profiles and resolves the
// given workload spec against them: the declarative path into the same
// facade. Zero Config fields inherit the spec's campaign block rather
// than the paper's constants; Seed and Workers are always the caller's.
func NewWithSpec(cfg Config, sp *spec.Spec) (*System, error) {
	daysSet, nodesSet := cfg.Days != 0, cfg.Nodes != 0
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	std := profile.MeasureStandardWorkers(cfg.Seed, cfg.Workers)
	wc, mix, err := spec.Resolve(sp, std)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Days == 0 {
		cfg.Days = wc.Days
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = wc.Nodes
	}
	return &System{cfg: cfg, std: std, mix: mix, base: &wc, sp: sp, daysSet: daysSet, nodesSet: nodesSet}, nil
}

// Profiles exposes the measured kernel signatures.
func (s *System) Profiles() profile.Standard { return s.std }

// CampaignConfig returns the workload configuration the system will run.
func (s *System) CampaignConfig() workload.Config {
	wc := workload.DefaultConfig(s.cfg.Seed)
	if s.base != nil {
		wc = *s.base
		wc.Seed = s.cfg.Seed
	}
	wc.Days = s.cfg.Days
	wc.Nodes = s.cfg.Nodes
	wc.Workers = s.cfg.Workers
	return wc
}

// RunCampaign executes the measurement window and returns its reduction.
func (s *System) RunCampaign() workload.Result {
	return workload.NewCampaign(s.CampaignConfig(), s.mix).Run()
}

// RunCampaignInto executes the measurement window, streaming the
// reduction into red (see workload.Reducer).
func (s *System) RunCampaignInto(red workload.Reducer) {
	workload.NewCampaign(s.CampaignConfig(), s.mix).RunInto(red)
}

// MeasureKernel micro-simulates a registered kernel on a fresh SP2 node
// CPU and returns its counter-derived rates.
func (s *System) MeasureKernel(name string, instrs uint64) (hpm.Rates, error) {
	k, ok := kernels.ByName(name)
	if !ok {
		return hpm.Rates{}, fmt.Errorf("core: unknown kernel %q", name)
	}
	cpu := power2.New(power2.Config{Seed: s.cfg.Seed + 1})
	cpu.RunLimited(k.New(s.cfg.Seed+1), instrs)
	d := hpm.Sub(hpm.Snapshot{}, cpu.Monitor().Snapshot())
	return hpm.UserRates(d, cpu.Elapsed()), nil
}

// Report renders every table and figure from a campaign result.
func (s *System) Report(res workload.Result) string {
	var b strings.Builder
	b.WriteString(analysis.RenderTable1())
	b.WriteString("\n")
	b.WriteString(analysis.ComputeTable2(res).Render())
	b.WriteString("\n")
	b.WriteString(analysis.ComputeTable3(res).Render())
	b.WriteString("\n")
	seq := analysis.MeasureSequentialRow(s.cfg.Seed, 200_000)
	bt := analysis.MeasureBT49Row(analysis.DefaultBT49())
	b.WriteString(analysis.ComputeTable4(res, seq, bt).Render())
	b.WriteString("\n")
	b.WriteString(analysis.RenderAll(res))
	return b.String()
}
