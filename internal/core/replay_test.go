package core

// The record/replay facade, end to end: the golden campaign hash must
// come back through RunCampaignRecordTo → RunCampaignReplayFrom and
// through the fleet path (RecordTo/ReplayFrom at shards {1, 4}), and a
// replay against a different system must hard-fail with the replay
// package's mismatch error.

import (
	"encoding/json"
	"errors"
	"hash/fnv"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/replay"
	"repro/internal/workload"
)

// goldenCampaignHash mirrors the constant pinned in
// internal/workload/golden_test.go.
const goldenCampaignHash uint64 = 0x88ee6c33b8c0bd5c

func campaignHash(t *testing.T, r workload.Result) uint64 {
	t.Helper()
	h := fnv.New64a()
	if err := json.NewEncoder(h).Encode(r); err != nil {
		t.Fatalf("hash result: %v", err)
	}
	return h.Sum64()
}

var (
	goldenOnce sync.Once
	goldenSys  *System
)

// goldenSystem builds the golden recipe through the facade: seed 7,
// 2-day default campaign (serial engine so the recipe is explicit).
func goldenSystem(t *testing.T) *System {
	t.Helper()
	goldenOnce.Do(func() { goldenSys = New(Config{Days: 2, Seed: 7, Workers: 1}) })
	return goldenSys
}

func TestRunCampaignRecordReplayGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaign is a full 2-day simulation per case")
	}
	s := goldenSystem(t)
	path := filepath.Join(t.TempDir(), "core.trace.gz")
	live, err := s.RunCampaignRecordTo(path)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if h := campaignHash(t, live); h != goldenCampaignHash {
		t.Fatalf("recorded run hash %#x, want golden %#x", h, goldenCampaignHash)
	}
	res, err := s.RunCampaignReplayFrom(path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if h := campaignHash(t, res); h != goldenCampaignHash {
		t.Fatalf("replayed hash %#x, want golden %#x", h, goldenCampaignHash)
	}

	// A different seed is a different campaign: the facade must surface
	// the fingerprint mismatch, not a plausible wrong Result.
	other := New(Config{Days: 2, Seed: 8, Workers: 1})
	if _, err := other.RunCampaignReplayFrom(path); !errors.Is(err, replay.ErrMismatch) {
		t.Fatalf("replay against the wrong system: %v, want ErrMismatch", err)
	}
}

func TestRunFleetRecordReplayGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden fleet campaign is a full 2-day simulation per case")
	}
	s := goldenSystem(t)
	path := filepath.Join(t.TempDir(), "core-fleet.trace.gz")
	live, err := s.RunFleet(FleetConfig{RecordTo: path})
	if err != nil {
		t.Fatalf("fleet record: %v", err)
	}
	if h := campaignHash(t, live); h != goldenCampaignHash {
		t.Fatalf("recorded fleet hash %#x, want golden %#x", h, goldenCampaignHash)
	}
	for _, shards := range []int{1, 4} {
		res, err := s.RunFleet(FleetConfig{Shards: shards, ReplayFrom: path})
		if err != nil {
			t.Fatalf("shards=%d: fleet replay: %v", shards, err)
		}
		if h := campaignHash(t, res); h != goldenCampaignHash {
			t.Fatalf("shards=%d: replayed fleet hash %#x, want golden %#x", shards, h, goldenCampaignHash)
		}
	}
}
