package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func sp2TLB() *TLB {
	return New(Config{Entries: units.TLBEntries, Ways: units.TLBWays, PageBytes: units.PageBytes})
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Entries: 512, Ways: 2, PageBytes: 4096}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Entries: 0, Ways: 2, PageBytes: 4096},
		{Entries: 512, Ways: 0, PageBytes: 4096},
		{Entries: 512, Ways: 2, PageBytes: 0},
		{Entries: 512, Ways: 3, PageBytes: 4096}, // not divisible
		{Entries: 512, Ways: 2, PageBytes: 4095}, // page not power of two
		{Entries: 384, Ways: 2, PageBytes: 4096}, // sets not power of two
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{Entries: 1, Ways: 2, PageBytes: 4096})
}

func TestMissThenHitWithinPage(t *testing.T) {
	tb := sp2TLB()
	if tb.Translate(0x1000) {
		t.Fatal("cold translation hit")
	}
	if !tb.Translate(0x1FFF) {
		t.Fatal("same-page translation missed")
	}
	if tb.Translate(0x2000) {
		t.Fatal("next-page translation hit")
	}
	st := tb.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSequentialScanMissesEvery512Elements(t *testing.T) {
	// Paper: for real*8 data, a TLB miss every 512 elements (4096/8).
	tb := sp2TLB()
	const n = 512 * 256
	for i := 0; i < n; i++ {
		tb.Translate(uint64(i * 8))
	}
	st := tb.Stats()
	if st.Misses != n/512 {
		t.Fatalf("misses = %d, want %d", st.Misses, n/512)
	}
	ratio := st.MissRatio()
	if ratio < 0.0019 || ratio > 0.0020 {
		t.Fatalf("sequential TLB miss ratio = %v, want ~0.00195", ratio)
	}
}

func TestCapacityReach(t *testing.T) {
	// 512 pages fit; sweeping them twice gives hits on the second pass.
	tb := sp2TLB()
	for p := 0; p < 512; p++ {
		tb.Translate(uint64(p * units.PageBytes))
	}
	tb.ResetStats()
	for p := 0; p < 512; p++ {
		if !tb.Translate(uint64(p * units.PageBytes)) {
			t.Fatalf("page %d evicted within capacity", p)
		}
	}
}

func TestLargeStrideThrashes(t *testing.T) {
	// Strides of one page per element (the paper's "large memory strides"
	// warning): every reference a new page, miss ratio near 1 on first touch.
	tb := sp2TLB()
	const n = 2048
	for i := 0; i < n; i++ {
		tb.Translate(uint64(i * units.PageBytes * 2))
	}
	if got := tb.Stats().MissRatio(); got < 0.99 {
		t.Fatalf("large-stride miss ratio = %v, want ~1", got)
	}
}

func TestLRUWithinSet(t *testing.T) {
	tb := New(Config{Entries: 4, Ways: 2, PageBytes: 4096}) // 2 sets
	// Pages 0, 2, 4 all map to set 0 (vpn & 1 == 0).
	tb.Translate(0 * 4096)
	tb.Translate(2 * 4096)
	tb.Translate(0 * 4096) // touch page 0
	tb.Translate(4 * 4096) // evicts page 2
	if !tb.Contains(0) {
		t.Fatal("page 0 evicted, want page 2")
	}
	if tb.Contains(2 * 4096) {
		t.Fatal("page 2 survived")
	}
}

func TestFlush(t *testing.T) {
	tb := sp2TLB()
	tb.Translate(0x5000)
	tb.Flush()
	if tb.Contains(0x5000) {
		t.Fatal("entry survived flush")
	}
}

func TestPageOf(t *testing.T) {
	tb := sp2TLB()
	if tb.PageOf(0) != 0 || tb.PageOf(4095) != 0 || tb.PageOf(4096) != 1 {
		t.Fatal("PageOf boundaries wrong")
	}
}

func TestStatsConservationProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		tb := New(Config{Entries: 16, Ways: 2, PageBytes: 4096})
		for _, a := range addrs {
			tb.Translate(uint64(a))
		}
		st := tb.Stats()
		return st.Accesses() == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatTranslationAlwaysHitsProperty(t *testing.T) {
	f := func(addr uint32) bool {
		tb := New(Config{Entries: 16, Ways: 2, PageBytes: 4096})
		tb.Translate(uint64(addr))
		return tb.Translate(uint64(addr))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTranslateHit(b *testing.B) {
	tb := sp2TLB()
	tb.Translate(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Translate(0x1000)
	}
}
