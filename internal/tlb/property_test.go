package tlb

// Property tests for the TLB: the accounting identity hits+misses ==
// translations over random geometries, and the last-entry memo checked
// against a memo-free port — the shortcut may never change a hit into a
// miss, a miss count, or the LRU victim ordering.

import (
	"testing"

	"repro/internal/rng"
)

// refTLB is the memo-free port of the TLB: the same set scan and LRU
// victim choice, without the last-entry shortcut.
type refTLB struct {
	sets      [][]entry
	setMask   uint64
	pageShift uint
	stats     Stats
	tick      uint64
}

func newRefTLB(cfg Config) *refTLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Entries / cfg.Ways
	sets := make([][]entry, nsets)
	for i := range sets {
		sets[i] = make([]entry, cfg.Ways)
	}
	shift := uint(0)
	for 1<<shift != cfg.PageBytes {
		shift++
	}
	return &refTLB{sets: sets, setMask: uint64(nsets - 1), pageShift: shift}
}

func (t *refTLB) Translate(addr uint64) bool {
	t.tick++
	vpn := addr >> t.pageShift
	set := t.sets[vpn&t.setMask]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lastUse = t.tick
			t.stats.Hits++
			return true
		}
	}
	t.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim] = entry{vpn: vpn, valid: true, lastUse: t.tick}
	return false
}

func (t *refTLB) Flush() {
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w] = entry{}
		}
	}
}

// randomGeometry draws a valid TLB configuration.
func randomGeometry(r *rng.Source) Config {
	ways := []int{1, 2, 4, 8}[r.Intn(4)]
	sets := 1 << r.IntRange(0, 7)
	return Config{
		Entries:   sets * ways,
		Ways:      ways,
		PageBytes: 1 << r.IntRange(9, 13),
	}
}

func TestPropertyTLBStatsBalance(t *testing.T) {
	r := rng.New(0x71b)
	for trial := 0; trial < 60; trial++ {
		cfg := randomGeometry(r)
		tl := New(cfg)
		footprint := uint64(cfg.Entries) * uint64(cfg.PageBytes) * 4
		const translations = 3000
		for i := 0; i < translations; i++ {
			tl.Translate(r.Uint64() % footprint)
		}
		s := tl.Stats()
		if s.Hits+s.Misses != translations {
			t.Fatalf("trial %d %+v: hits %d + misses %d != %d translations", trial, cfg, s.Hits, s.Misses, translations)
		}
		if s.Accesses() != translations {
			t.Fatalf("trial %d: Accesses() = %d, want %d", trial, s.Accesses(), translations)
		}
		if ratio := s.MissRatio(); ratio < 0 || ratio > 1 {
			t.Fatalf("trial %d: miss ratio %v out of [0,1]", trial, ratio)
		}
	}
}

// TestPropertyLastHitMemoEquivalence drives the memoized TLB and the
// memo-free port through the same trace: every translation agrees, so the
// memo never changes a miss count or a victim choice.
func TestPropertyLastHitMemoEquivalence(t *testing.T) {
	r := rng.New(0x1a57)
	for trial := 0; trial < 40; trial++ {
		cfg := randomGeometry(r)
		memo := New(cfg)
		ref := newRefTLB(cfg)
		footprint := uint64(cfg.Entries) * uint64(cfg.PageBytes) * 4
		var addr uint64
		for i := 0; i < 5000; i++ {
			// Page-local runs (memo-friendly) mixed with random jumps.
			if v := r.Uint64(); v%4 == 0 {
				addr = v % footprint
			} else {
				addr += 8 << (v % 6)
			}
			a := addr % footprint
			if mh, rh := memo.Translate(a), ref.Translate(a); mh != rh {
				t.Fatalf("trial %d %+v access %d addr %#x: memo hit=%v, scan hit=%v", trial, cfg, i, a, mh, rh)
			}
			if memo.Stats() != ref.stats {
				t.Fatalf("trial %d %+v access %d: stats diverged: %+v vs %+v", trial, cfg, i, memo.Stats(), ref.stats)
			}
			if i%1500 == 1499 {
				memo.Flush()
				ref.Flush()
			}
		}
		for i := 0; i < 200; i++ {
			a := r.Uint64() % footprint
			if memo.Contains(a) != refContains(ref, a) {
				t.Fatalf("trial %d %+v: contents diverged at %#x", trial, cfg, a)
			}
		}
	}
}

func refContains(t *refTLB, addr uint64) bool {
	vpn := addr >> t.pageShift
	for _, e := range t.sets[vpn&t.setMask] {
		if e.valid && e.vpn == vpn {
			return true
		}
	}
	return false
}
