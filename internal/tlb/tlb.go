// Package tlb models the RS6000 translation lookaside buffer: 512 entries
// over 4096-byte pages (paper §2). A TLB miss costs 36 to 54 cycles while
// the hardware walks the page table; the CPU model draws the exact delay
// from that interval.
package tlb

import "fmt"

// Config describes a TLB geometry.
type Config struct {
	Entries   int
	Ways      int
	PageBytes int
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.PageBytes <= 0 {
		return fmt.Errorf("tlb: non-positive geometry %+v", c)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb: entries %d not divisible by ways %d", c.Entries, c.Ways)
	}
	if c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("tlb: page size %d not a power of two", c.PageBytes)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("tlb: set count %d not a power of two", sets)
	}
	return nil
}

// Stats accumulates translation events.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// MissRatio reports misses over total translations.
func (s Stats) MissRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// Accesses reports total translations.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

type entry struct {
	vpn     uint64
	valid   bool
	lastUse uint64
}

// TLB is a set-associative translation buffer with LRU replacement. Not
// safe for concurrent use.
type TLB struct {
	cfg       Config
	sets      [][]entry
	setMask   uint64
	pageShift uint
	stats     Stats
	tick      uint64

	// last points at the entry that served the previous translation.
	// Runs of references to the same page (the common case: pages are 16
	// cache lines) hit it without the set scan. Checking last.valid &&
	// last.vpn == vpn is exactly the scan's hit test for that entry, so
	// the shortcut cannot change any outcome; it is reset on Flush.
	last *entry
}

// New builds a TLB; it panics on invalid geometry.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Entries / cfg.Ways
	sets := make([][]entry, nsets)
	backing := make([]entry, cfg.Entries)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	shift := uint(0)
	for 1<<shift != cfg.PageBytes {
		shift++
	}
	return &TLB{cfg: cfg, sets: sets, setMask: uint64(nsets - 1), pageShift: shift}
}

// Config returns the construction geometry.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns accumulated counts.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes counts without disturbing contents.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// PageOf returns the virtual page number of addr.
func (t *TLB) PageOf(addr uint64) uint64 { return addr >> t.pageShift }

// Translate looks up the page containing addr, installing it on a miss.
// It returns true on a hit.
func (t *TLB) Translate(addr uint64) bool {
	t.tick++
	vpn := addr >> t.pageShift
	if l := t.last; l != nil && l.valid && l.vpn == vpn {
		l.lastUse = t.tick
		t.stats.Hits++
		return true
	}
	setIdx := vpn & t.setMask
	set := t.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].lastUse = t.tick
			t.last = &set[i]
			t.stats.Hits++
			return true
		}
	}
	t.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim] = entry{vpn: vpn, valid: true, lastUse: t.tick}
	t.last = &set[victim]
	return false
}

// Contains probes for the page containing addr without changing state.
func (t *TLB) Contains(addr uint64) bool {
	vpn := addr >> t.pageShift
	for _, e := range t.sets[vpn&t.setMask] {
		if e.valid && e.vpn == vpn {
			return true
		}
	}
	return false
}

// Flush invalidates all entries (context switch / new job on the node).
func (t *TLB) Flush() {
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w] = entry{}
		}
	}
	t.last = nil
}
