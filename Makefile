GO ?= go

.PHONY: build test race vet lint lint-fixtures ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/hpmlint ./...

# The violation fixtures must keep producing findings; a linter that goes
# quiet is worse than no linter.
lint-fixtures:
	! $(GO) run ./cmd/hpmlint ./internal/lint/testdata/src/...

ci: build vet test race lint lint-fixtures
