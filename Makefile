GO ?= go
FUZZTIME ?= 30s

.PHONY: build test race vet lint lint-fixtures spec-validate bench benchdiff bench-smoke bench-gate fleet-smoke replay-smoke fuzz-smoke property soak-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Baseline-gated: only findings absent from the committed (empty) baseline
# fail, so the gate is a ratchet — accepted debt is written down, anything
# new is an error.
lint:
	$(GO) run ./cmd/hpmlint -baseline .hpmlint-baseline.json ./...

# The violation fixtures must keep producing findings; a linter that goes
# quiet is worse than no linter. -expect compares exact per-fixture,
# per-rule counts against the committed golden file, so a linter that
# fails to build (or an analyzer that is silently neutered) fails the
# gate — the old `! hpmlint` form counted both as a pass.
lint-fixtures:
	cd internal/lint && $(GO) run ../../cmd/hpmlint -expect testdata/fixture_counts.json ./testdata/src/...

# Validate every committed workload-spec preset through the real CLI
# path (load, decode, field-path validation). Exit 2 on the first
# malformed spec, matching the hpmlint convention.
spec-validate:
	$(GO) run ./cmd/spsim -validate

# One pass over every paper benchmark; the human-readable run streams to
# the terminal and the parsed table lands in BENCH_campaign.json.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | $(GO) run ./cmd/benchjson -o BENCH_campaign.json

# Re-run the paper benchmarks and print per-benchmark deltas against the
# committed baseline without overwriting it. Informational: single-pass
# timings are noisy, so benchdiff only fails on build/run errors.
benchdiff:
	$(GO) test -run '^$$' -bench . -benchtime 1x . | $(GO) run ./cmd/benchjson -o '' -diff BENCH_campaign.json

# Quick smoke: one iteration of the microsim + campaign-day benchmarks,
# just to prove the bench harness still builds and runs (used by CI).
bench-smoke:
	$(GO) test -run '^$$' -bench 'CPUSimulation|CampaignDay' -benchtime 1x . | $(GO) run ./cmd/benchjson -o '' -diff BENCH_campaign.json

# Regression gate: re-run the hot-path benchmarks and enforce the
# committed tolerances/ratios in BENCH_gates.json against the committed
# baseline. Unlike benchdiff this is pass/fail — a CampaignDay, fleet or
# telemetry-overhead regression beyond the (deliberately generous,
# single-iteration-noise-tolerant) bounds fails `make ci`. Only the
# campaign-scale benches are gated: their single pass does real work
# (tens of ms), so the timing is signal; micro benches at -benchtime 1x
# measure setup noise and stay diff-only.
bench-gate:
	$(GO) test -run '^$$' -bench 'CampaignDay|FleetCampaign|MeasureStandardCold|CollectorThroughput' -benchtime 1x . | $(GO) run ./cmd/benchjson -o '' -diff BENCH_campaign.json -gate BENCH_gates.json

# Operational smoke of the fleet engine through the real CLI: run a
# 2-cluster fleet sharded 2 ways, force a halt after the first cluster
# completes (writing the checkpoint), then resume from it to completion.
FLEET_SMOKE_CP := $(if $(TMPDIR),$(TMPDIR),/tmp)/hpm-fleet-smoke.json.gz
fleet-smoke:
	rm -f $(FLEET_SMOKE_CP)
	$(GO) run ./cmd/spsim -days 2 -clusters 2 -shards 2 -checkpoint $(FLEET_SMOKE_CP) -halt-after 1
	$(GO) run ./cmd/spsim -days 2 -clusters 2 -shards 2 -checkpoint $(FLEET_SMOKE_CP) -resume
	rm -f $(FLEET_SMOKE_CP)

# Differential smoke of trace record/replay through the real CLI: record
# a 2-day campaign while exporting its database, replay the trace at a
# different worker count, and require the exported databases to be
# byte-identical. cmp is the whole proof — any divergence fails.
REPLAY_SMOKE_DIR := $(if $(TMPDIR),$(TMPDIR),/tmp)
replay-smoke:
	rm -f $(REPLAY_SMOKE_DIR)/hpm-replay-smoke.trace.gz $(REPLAY_SMOKE_DIR)/hpm-replay-live.json $(REPLAY_SMOKE_DIR)/hpm-replay-replayed.json
	$(GO) run ./cmd/spsim -days 2 -seed 7 -record $(REPLAY_SMOKE_DIR)/hpm-replay-smoke.trace.gz -o $(REPLAY_SMOKE_DIR)/hpm-replay-live.json
	$(GO) run ./cmd/spsim -days 2 -seed 7 -workers 3 -replay $(REPLAY_SMOKE_DIR)/hpm-replay-smoke.trace.gz -o $(REPLAY_SMOKE_DIR)/hpm-replay-replayed.json
	cmp $(REPLAY_SMOKE_DIR)/hpm-replay-live.json $(REPLAY_SMOKE_DIR)/hpm-replay-replayed.json
	rm -f $(REPLAY_SMOKE_DIR)/hpm-replay-smoke.trace.gz $(REPLAY_SMOKE_DIR)/hpm-replay-live.json $(REPLAY_SMOKE_DIR)/hpm-replay-replayed.json

# Short fuzzing pass over every fuzz target (committed corpora plus
# FUZZTIME of fresh exploration per target). go test allows one -fuzz
# pattern per invocation, so each target gets its own run.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzPlanInvariants$$' -fuzztime $(FUZZTIME) ./internal/faults/
	$(GO) test -run '^$$' -fuzz '^FuzzEpilogueDelay$$' -fuzztime $(FUZZTIME) ./internal/faults/
	$(GO) test -run '^$$' -fuzz '^FuzzProfileCacheDecode$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz '^FuzzMetricsEncode$$' -fuzztime $(FUZZTIME) ./internal/telemetry/
	$(GO) test -run '^$$' -fuzz '^FuzzBaselineDecode$$' -fuzztime $(FUZZTIME) ./internal/lint/
	$(GO) test -run '^$$' -fuzz '^FuzzSpecDecode$$' -fuzztime $(FUZZTIME) ./internal/spec/
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz '^FuzzWireBatchDecode$$' -fuzztime $(FUZZTIME) ./internal/rs2hpm/
	$(GO) test -run '^$$' -fuzz '^FuzzReplayDecode$$' -fuzztime $(FUZZTIME) ./internal/replay/

# Every property test in the tree, under the race detector.
property:
	$(GO) test -run Property -race ./...

# The collection-service soak suite under the race detector: wall-bounded
# runs against healthy/flaky/dead/slow fleets, leak-checked and with the
# sample ledger cross-footed exactly (internal/rs2hpm/loadtest).
soak-smoke:
	$(GO) test -race -run 'TestSoak' -count=1 ./internal/rs2hpm/loadtest/

ci: build vet test race lint lint-fixtures spec-validate fleet-smoke replay-smoke soak-smoke bench-gate
