// Package repro_test is the top-level benchmark harness: one benchmark per
// table and figure of Bergeron's SC'98 paper, plus ablation benches for the
// design choices DESIGN.md calls out. Each table/figure bench regenerates
// its artifact from a shared campaign and reports the headline quantity as
// a benchmark metric next to the paper's value, and prints the full
// rendering once.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/fleet"
	"repro/internal/hpm"
	"repro/internal/kernels"
	"repro/internal/node"
	"repro/internal/pbs"
	"repro/internal/power2"
	"repro/internal/profile"
	"repro/internal/rs2hpm/loadtest"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// The benchmark campaign: long enough for every figure to be populated,
// short enough to keep `go test -bench` pleasant. Built once.
var (
	campOnce sync.Once
	campRes  workload.Result
	campStd  profile.Standard
)

func campaign(b *testing.B) workload.Result {
	b.Helper()
	campOnce.Do(func() {
		campStd = profile.MeasureStandardWorkers(1, runtime.NumCPU())
		cfg := workload.DefaultConfig(1)
		cfg.Days = 40
		cfg.Workers = runtime.NumCPU()
		campRes = workload.NewCampaign(cfg, workload.DefaultMix(campStd)).Run()
	})
	return campRes
}

// benchWorkerCounts is the engine-parallelism axis for the staged-engine
// benches: serial plus full-parallel, collapsed to one point on a 1-CPU
// machine.
func benchWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// printOnce prints an artifact exactly once across a bench's iterations.
var printGuards sync.Map

func printOnce(name, text string) {
	if _, loaded := printGuards.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

func BenchmarkTable1CounterSelection(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = analysis.RenderTable1()
	}
	printOnce("table1", s)
}

func BenchmarkTable2MajorRates(b *testing.B) {
	res := campaign(b)
	b.ResetTimer()
	var t2 analysis.Table2
	for i := 0; i < b.N; i++ {
		t2 = analysis.ComputeTable2(res)
	}
	b.ReportMetric(t2.AvgMflops, "Mflops/node[paper=17.4]")
	b.ReportMetric(t2.AvgMips, "Mips/node[paper=45.7]")
	b.ReportMetric(t2.AvgMops, "Mops/node[paper=48.3]")
	printOnce("table2", t2.Render())
}

func BenchmarkTable3RateBreakdown(b *testing.B) {
	res := campaign(b)
	b.ResetTimer()
	var t3 analysis.Table3
	for i := 0; i < b.N; i++ {
		t3 = analysis.ComputeTable3(res)
	}
	b.ReportMetric(100*t3.FMAFraction, "fma-share-%[paper=54]")
	b.ReportMetric(t3.FPUAsymmetry, "fpu0/fpu1[paper=1.7]")
	b.ReportMetric(100*t3.CacheRatio, "cache-miss-%[paper=1.0]")
	b.ReportMetric(100*t3.TLBRatio, "tlb-miss-%[paper=0.1]")
	printOnce("table3", t3.Render())
}

func BenchmarkTable4MemoryHierarchy(b *testing.B) {
	res := campaign(b)
	seq := analysis.MeasureSequentialRow(1, 200_000)
	bt := analysis.MeasureBT49Row(analysis.DefaultBT49())
	b.ResetTimer()
	var t4 analysis.Table4
	for i := 0; i < b.N; i++ {
		t4 = analysis.ComputeTable4(res, seq, bt)
	}
	b.ReportMetric(t4.BT49.MflopsPerCPU, "bt49-Mflops/cpu[paper=44]")
	b.ReportMetric(100*t4.Sequential.CacheMissRatio, "seq-cache-%[paper=3]")
	b.ReportMetric(100*t4.Workload.CacheMissRatio, "workload-cache-%[paper=1]")
	printOnce("table4", t4.Render())
}

func BenchmarkFigure1SystemHistory(b *testing.B) {
	res := campaign(b)
	b.ResetTimer()
	var f analysis.Figure1Data
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure1(res)
	}
	b.ReportMetric(f.MeanGflops, "mean-Gflops[paper=1.3]")
	b.ReportMetric(100*f.MeanUtil, "mean-util-%[paper=64]")
	printOnce("fig1", f.Render())
}

func BenchmarkFigure2WalltimeByNodes(b *testing.B) {
	res := campaign(b)
	b.ResetTimer()
	var f analysis.Figure2Data
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure2(res)
	}
	b.ReportMetric(float64(f.PeakNodes), "peak-nodes[paper=16]")
	printOnce("fig2", f.Render())
}

func BenchmarkFigure3PerfByNodes(b *testing.B) {
	res := campaign(b)
	b.ResetTimer()
	var f analysis.Figure3Data
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure3(res)
	}
	b.ReportMetric(f.MeanUpTo64, "Mflops/node<=64")
	b.ReportMetric(f.MeanBeyond64, "Mflops/node>64[collapse]")
	printOnce("fig3", f.Render())
}

func BenchmarkFigure4SixteenNodeHistory(b *testing.B) {
	res := campaign(b)
	b.ResetTimer()
	var f analysis.Figure4Data
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure4(res)
	}
	b.ReportMetric(f.Mean, "job-Mflops[paper=320]")
	b.ReportMetric(f.Std, "spread[paper=200]")
	printOnce("fig4", f.Render())
}

func BenchmarkFigure5SystemIntervention(b *testing.B) {
	res := campaign(b)
	b.ResetTimer()
	var f analysis.Figure5Data
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFigure5(res)
	}
	b.ReportMetric(f.Corr, "corr[paper<0]")
	printOnce("fig5", f.Render())
}

// --- Ablations -----------------------------------------------------------

// measureKernel runs a kernel on a CPU configuration and reduces counters,
// through the memoized store: after the first iteration warms the entry,
// the ablation benches measure the rate derivation, not the microsim.
func measureKernel(name string, cfg power2.Config, n uint64) hpm.Rates {
	k, ok := kernels.ByName(name)
	if !ok {
		panic("bench: unknown kernel " + name)
	}
	m := profile.DefaultStore.Measure(k, cfg, n)
	return hpm.UserRates(m.Delta, m.Seconds)
}

// BenchmarkAblationFPUIssuePolicy shows the FPU0-first issue rule is what
// produces the paper's 1.7 asymmetry: round-robin flattens it to 1.0.
func BenchmarkAblationFPUIssuePolicy(b *testing.B) {
	var real, ablated hpm.Rates
	for i := 0; i < b.N; i++ {
		real = measureKernel("cfd", power2.Config{Seed: 1}, 100_000)
		ablated = measureKernel("cfd", power2.Config{Seed: 1, Policy: power2.RoundRobin}, 100_000)
	}
	b.ReportMetric(real.FPUAsymmetry(), "fpu0/fpu1-real[paper=1.7]")
	b.ReportMetric(ablated.FPUAsymmetry(), "fpu0/fpu1-roundrobin[=1.0]")
}

// BenchmarkAblationQuadCounting shows the quad-counts-as-one monitor
// convention is why the paper's flops/memref reads ~0.5-0.6: counting the
// quad's two doublewords separately inflates the memory instruction count.
func BenchmarkAblationQuadCounting(b *testing.B) {
	var real, ablated hpm.Rates
	for i := 0; i < b.N; i++ {
		real = measureKernel("cfd", power2.Config{Seed: 1}, 100_000)
		ablated = measureKernel("cfd", power2.Config{Seed: 1, QuadCountsAsTwo: true}, 100_000)
	}
	b.ReportMetric(real.FlopsPerMemRef(), "flops/memref-quad1")
	b.ReportMetric(ablated.FlopsPerMemRef(), "flops/memref-quad2")
}

// BenchmarkAblationCacheReplacement compares LRU (the POWER2) with random
// replacement in the 4-way D-cache on the workload kernel.
func BenchmarkAblationCacheReplacement(b *testing.B) {
	lruCfg := power2.Config{Seed: 1}
	rndCache := cacheConfigRandom()
	rndCfg := power2.Config{Seed: 1, DCache: &rndCache}
	var lru, rnd hpm.Rates
	for i := 0; i < b.N; i++ {
		lru = measureKernel("cfd", lruCfg, 100_000)
		rnd = measureKernel("cfd", rndCfg, 100_000)
	}
	b.ReportMetric(100*lru.CacheMissRatio(), "miss-%-lru")
	b.ReportMetric(100*rnd.CacheMissRatio(), "miss-%-random")
}

// BenchmarkAblationPaging contrasts the oversubscribed kernel on a starved
// node (disk page-ins) with a well-provisioned one (zero-fill only): the
// Figure 5 signature collapses without the paging model.
func BenchmarkAblationPaging(b *testing.B) {
	var starved, healthy float64
	for i := 0; i < b.N; i++ {
		k, _ := kernels.ByName("paging")
		small := profile.DefaultStore.Measure(k, power2.Config{Seed: 1, MemoryBytes: 32 << 20}, 700_000)
		starved = hpm.SystemUserFXURatio(small.Delta)
		big := profile.DefaultStore.Measure(k, power2.Config{Seed: 1, MemoryBytes: 1 << 30}, 700_000)
		healthy = hpm.SystemUserFXURatio(big.Delta)
	}
	b.ReportMetric(starved, "sys/user-fxu-starved")
	b.ReportMetric(healthy, "sys/user-fxu-healthy")
}

// BenchmarkAblationDrainPolicy measures what the queue-drain rule buys the
// >64-node jobs the paper discusses: without draining, backfill starves
// them indefinitely on a busy machine.
func BenchmarkAblationDrainPolicy(b *testing.B) {
	runOnce := func(drainThreshold int) (bigJobWait float64) {
		clock := &simclock.Clock{}
		nodes := make([]*node.Node, 100)
		for i := range nodes {
			nodes[i] = node.New(node.Config{ID: i})
		}
		srv := pbs.New(clock, nodes, pbs.Config{DrainThreshold: drainThreshold})
		// A steady stream of 30-node jobs plus one 80-node job.
		for i := 0; i < 12; i++ {
			at := simclock.Time(float64(i) * 50)
			clock.At(at, func() {
				if _, err := srv.Submit(pbs.Spec{Nodes: 30, WallSeconds: 300, Class: "x"}); err != nil {
					b.Fatal(err)
				}
			})
		}
		clock.At(simclock.Time(10), func() {
			if _, err := srv.Submit(pbs.Spec{Nodes: 80, WallSeconds: 100, Class: "big"}); err != nil {
				b.Fatal(err)
			}
		})
		clock.Run()
		for _, rec := range srv.Records() {
			if rec.Class == "big" {
				return (rec.StartAt - rec.SubmitAt).Seconds()
			}
		}
		return -1 // never started
	}
	var withDrain, withoutDrain float64
	for i := 0; i < b.N; i++ {
		withDrain = runOnce(64)
		withoutDrain = runOnce(150) // threshold above any job: pure backfill
	}
	b.ReportMetric(withDrain, "bigjob-wait-s-drain")
	b.ReportMetric(withoutDrain, "bigjob-wait-s-nodrain")
}

// cacheConfigRandom builds the SP2 D-cache geometry with random
// replacement (the ablation variant).
func cacheConfigRandom() cache.Config {
	return cache.Config{
		SizeBytes:     256 * 1024,
		LineBytes:     256,
		Ways:          4,
		Policy:        cache.Random,
		WriteAllocate: true,
	}
}

// --- Whole-system benches ------------------------------------------------

// BenchmarkCPUSimulation measures raw instruction-level simulation speed.
func BenchmarkCPUSimulation(b *testing.B) {
	k, _ := kernels.ByName("cfd")
	cpu := power2.New(power2.Config{Seed: 1})
	s := k.New(1)
	b.ResetTimer()
	cpu.RunLimited(s, uint64(b.N))
}

// benchCampaignDay is the shared body of the campaign-day benches: one
// simulated day of the full campaign (job generation, PBS scheduling,
// profile extrapolation, daily reduction) at serial and full-parallel
// engine settings; the Result is bit-identical at every setting, so the
// sub-benchmarks differ only in wall-clock.
func benchCampaignDay(b *testing.B, withTelemetry bool) {
	campaign(b) // ensure profiles measured
	telemetry.SetEnabled(withTelemetry)
	defer telemetry.SetEnabled(true)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := workload.DefaultConfig(uint64(i) + 2)
				cfg.Days = 1
				cfg.Workers = workers
				workload.NewCampaign(cfg, workload.DefaultMix(campStd)).Run()
			}
		})
	}
}

// BenchmarkCampaignDay runs with telemetry disabled: the baseline half of
// the hpmtel overhead contract.
func BenchmarkCampaignDay(b *testing.B) {
	benchCampaignDay(b, false)
}

// BenchmarkCampaignDayTelemetry is the identical workload with hpmtel
// observing it; the contract is <2% over BenchmarkCampaignDay. The two
// benches share one body so the comparison can never drift.
func BenchmarkCampaignDayTelemetry(b *testing.B) {
	benchCampaignDay(b, true)
}

// BenchmarkFleetCampaign measures the sharded multi-cluster engine: a
// fleet of six single-day clusters partitioned across shards, streamed
// through the canonical-order merge (internal/fleet). The Result is
// bit-identical at every shard count, so the axis is pure wall-clock —
// near-linear scaling where the host has CPUs to give, collapsed to one
// point on a 1-CPU machine (the benchWorkerCounts convention).
func BenchmarkFleetCampaign(b *testing.B) {
	campaign(b) // ensure profiles measured
	for _, shards := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				members := make([]fleet.Member, 6)
				for c := range members {
					cfg := workload.DefaultConfig(workload.ClusterSeed(uint64(i)+2, c))
					cfg.Days = 1
					cfg.Workers = 1
					members[c] = fleet.Member{Config: cfg, Mix: workload.DefaultMix(campStd)}
				}
				if _, err := fleet.Run(members, fleet.Options{Shards: shards}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMeasureStandard measures the six-kernel profile stage as the
// campaign runs it: through the memoized store, which turns repeat
// measurements of a seed into cache hits (the seeds repeat across the
// harness's b.N ramp-up, so steady state is mostly the hit path — the
// production shape for cmd/experiments and the ablations).
func BenchmarkMeasureStandard(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				profile.MeasureStandardWorkers(uint64(i)+1, workers)
			}
		})
	}
}

// BenchmarkMeasureStandardCold bypasses the store entirely, tracking the
// raw microsim cost of the six-kernel stage (the number the hot-path
// optimizations move; the store cannot hide a regression here).
func BenchmarkMeasureStandardCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		profile.MeasureStandardStore(nil, uint64(i)+1, 1)
	}
}

// BenchmarkCollectorThroughput measures the sustained collection service
// end to end: a healthy in-process fleet (4 daemons x 8 nodes) swept by
// the pooled, batched collector over loopback TCP, every sample landing
// in the log through the bounded ingest queue. One iteration is eight
// fleet-wide sweeps (8 x 32 node reads, so the single-pass `make bench`
// timing averages away loopback jitter); the samples/s and wire bytes/s
// metrics are the service's sustained rate, and the ledger still has to
// cross-foot exactly at the end. Gated in BENCH_gates.json.
func BenchmarkCollectorThroughput(b *testing.B) {
	h, err := loadtest.New(loadtest.Spec{
		Healthy: 4, NodesPerDaemon: 8,
		Collectors: 4, Batch: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	// Wire volume comes from the process-wide client byte counters, so
	// measure deltas across the timed region.
	rx := telemetry.Default.Counter("rs2hpm.client.bytes_rx")
	tx := telemetry.Default.Counter("rs2hpm.client.bytes_tx")
	rx0, tx0 := rx.Value(), tx.Value()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 8; s++ {
			if err := h.Sweep(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	wire := float64(rx.Value() - rx0 + tx.Value() - tx0)
	h.Close()
	if err := h.Verify(); err != nil {
		b.Fatal(err)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(h.Ledger().Captured)/secs, "samples/s")
		b.ReportMetric(wire/secs, "bytes/s")
	}
}

// BenchmarkWhatIfIOWait runs the paper's closing recommendation — a
// counter selection reporting I/O wait — against the NAS selection on the
// two pathologies the campaign could only infer.
func BenchmarkWhatIfIOWait(b *testing.B) {
	var w analysis.IOWaitWhatIf
	for i := 0; i < b.N; i++ {
		w = analysis.MeasureIOWaitWhatIf(1)
	}
	b.ReportMetric(100*w.Paging.WaitFraction, "paging-iowait-%")
	b.ReportMetric(100*w.MPI.WaitFraction, "mpi-iowait-%")
	printOnce("whatif", w.Render())
}

// BenchmarkNPBSuite measures the full NAS Parallel Benchmark character set
// on the CPU model (the NAS-96-010 extension of Table 4's BT reference).
func BenchmarkNPBSuite(b *testing.B) {
	var s analysis.NPBSuite
	for i := 0; i < b.N; i++ {
		s = analysis.MeasureNPBSuite(1, 200_000)
	}
	for _, r := range s.Rows {
		b.ReportMetric(r.MflopsPerCPU, r.Name+"-Mflops")
	}
	printOnce("npb", s.Render())
}

// BenchmarkAblationCheckpointing implements the capability the paper says
// the real system lacked ("System administrators could not checkpoint
// MPI/PVM jobs and had to rely upon draining the queues") and measures
// what it buys an 80-node job on a busy machine.
func BenchmarkAblationCheckpointing(b *testing.B) {
	runOnce := func(checkpoint bool) (bigJobWait float64, preemptions int) {
		clock := &simclock.Clock{}
		nodes := make([]*node.Node, 100)
		for i := range nodes {
			nodes[i] = node.New(node.Config{ID: i})
		}
		srv := pbs.New(clock, nodes, pbs.Config{DrainThreshold: 64, Checkpointing: checkpoint})
		for i := 0; i < 12; i++ {
			at := simclock.Time(float64(i) * 50)
			clock.At(at, func() {
				if _, err := srv.Submit(pbs.Spec{Nodes: 30, WallSeconds: 300, Class: "x", MemoryPerNodeBytes: 1 << 20}); err != nil {
					b.Fatal(err)
				}
			})
		}
		clock.At(simclock.Time(10), func() {
			if _, err := srv.Submit(pbs.Spec{Nodes: 80, WallSeconds: 100, Class: "big"}); err != nil {
				b.Fatal(err)
			}
		})
		clock.Run()
		for _, rec := range srv.Records() {
			if rec.Class == "big" {
				return (rec.StartAt - rec.SubmitAt).Seconds(), srv.Preemptions()
			}
		}
		return -1, srv.Preemptions()
	}
	var drainWait, ckptWait float64
	var preempts int
	for i := 0; i < b.N; i++ {
		drainWait, _ = runOnce(false)
		ckptWait, preempts = runOnce(true)
	}
	b.ReportMetric(drainWait, "bigjob-wait-s-drain")
	b.ReportMetric(ckptWait, "bigjob-wait-s-checkpoint")
	b.ReportMetric(float64(preempts), "preemptions")
}
